"""Ensemble-engine cost-per-seed benchmark (not a paper figure).

Runs the reference sweep — 64 seeds of the srun configuration at
4 nodes, one null-task wave (224 tasks/seed) — through the vectorized
ensemble engine and through 64 independent sequential
``run_experiment`` calls, and writes both rates plus their ratio to
``BENCH_ensemble.json``.  The committed gate is the ISSUE's ≥10×
cheaper-per-seed contract; ``tools/bench_gate.py`` then guards both
absolute rates and the speedup across commits.

The comparison is apples-to-apples because the per-seed *outputs* are
identical by construction: metrics float-equal, exported profiles
byte-equal (pinned by ``tests/ensemble/``) — the engines differ only
in how much work they share across members.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.ensemble import run_ensemble, supports_vectorized
from repro.experiments import ExperimentConfig, run_experiment

from .conftest import BENCH_ROUNDS, rate_stats, run_once, write_bench

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_ensemble.json"

#: The reference sweep: srun at 4 nodes, one null wave = 224 tasks
#: per seed, 64 seeds.
CFG = ExperimentConfig(exp_id="perf_ensemble", launcher="srun",
                       workload="null", n_nodes=4, waves=1, seed=0)
N_SEEDS = 64
SEEDS = list(range(N_SEEDS))

#: The acceptance gate: ensemble per-seed cost at most a tenth of an
#: independent run's.
MIN_SPEEDUP = 10.0


def _tasks(result) -> int:
    assert result.n_done == result.n_tasks == 224
    return result.n_tasks


def _ensemble_rate() -> float:
    wall0 = time.perf_counter()
    ens = run_ensemble(CFG, seeds=SEEDS)
    wall = time.perf_counter() - wall0
    assert ens.engine == "vectorized"
    total = sum(_tasks(m.result) for m in ens.members)
    return total / wall


def _independent_rate() -> float:
    wall0 = time.perf_counter()
    total = sum(_tasks(run_experiment(CFG.with_seed(seed)))
                for seed in SEEDS)
    return total / (time.perf_counter() - wall0)


def test_ensemble_per_seed_speedup(benchmark, emit):
    assert supports_vectorized(CFG)

    def _measure():
        ensemble = rate_stats(_ensemble_rate)
        # The independent leg is ~64 full DES runs; one timed round
        # after the shared warmup keeps the benchmark's wall time
        # bounded, and the gate's 10x margin dwarfs its round noise.
        independent = rate_stats(_independent_rate, rounds=1)
        return ensemble, independent

    ensemble, independent = run_once(benchmark, _measure)
    speedup = ensemble["median"] / independent["median"]

    write_bench(BENCH_FILE, {
        "n_seeds": N_SEEDS,
        "tasks_per_seed": 224,
        "tasks_per_wall_second_ensemble": ensemble["median"],
        "tasks_per_wall_second_independent": independent["median"],
        "per_seed_speedup": speedup,
        "spread": {"ensemble": ensemble, "independent": independent},
        "rounds": BENCH_ROUNDS,
    })

    emit(f"ensemble: {ensemble['median']:,.0f} tasks/s  "
         f"independent: {independent['median']:,.0f} tasks/s  "
         f"-> {speedup:.1f}x cheaper per seed "
         f"({N_SEEDS} seeds x 224 tasks)\n"
         f"wrote {BENCH_FILE}")

    assert speedup >= MIN_SPEEDUP, (
        f"ensemble engine is only {speedup:.1f}x cheaper per seed "
        f"than independent runs (gate: {MIN_SPEEDUP:.0f}x)")
