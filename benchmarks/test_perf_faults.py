"""Fault-layer overhead guard (not a paper figure).

Runs the kernel-benchmark reference configuration (64 nodes, 4 Flux
partitions, 14,336 null tasks) with the fault layer disabled and with
a representative fault specification enabled, and writes the measured
rates to ``BENCH_faults.json``.  The contract under test is the
ISSUE's inertness requirement: a session that never asked for fault
injection must run the same hot kernel loops as before the subsystem
existed.

Wall-clock ratios on a shared machine are noisy, so the disabled
overhead is asserted between two bracketing disabled rounds with a
generous noise allowance; the real regression tracking happens on the
recorded JSON across commits.  The faulty run has no pass bound
(injected failures and retries are allowed to cost), but its slowdown
is recorded for the same tracking.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.experiments import ExperimentConfig, run_experiment
from repro.faults import FaultSpec, RetryPolicy

from .conftest import BENCH_ROUNDS, rate_stats, run_once, write_bench

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

CFG = ExperimentConfig(exp_id="perf_faults", launcher="flux",
                       workload="null", n_nodes=64, n_partitions=4,
                       waves=4, seed=0)

#: A realistic mid-pressure spec: node failures every ~30 simulated
#: minutes, 1% flaky launches, occasional partition crashes.
FAULTY = FaultSpec(mtbf=1800.0, mttr=120.0, p_launch_fail=0.01,
                   backend_mtbf=3600.0,
                   retry=RetryPolicy(backoff_base=0.5, jitter=0.1))

#: Allowed disabled-path round spread (measurement-noise certificate,
#: mirrors the observability benchmark's allowance).
MAX_DISABLED_OVERHEAD = 0.10


def _rate(faults) -> float:
    from dataclasses import replace

    wall0 = time.perf_counter()
    result = run_experiment(replace(CFG, faults=faults))
    wall = time.perf_counter() - wall0
    assert result.n_tasks == 14336
    if faults is None:
        assert result.n_done == result.n_tasks
    return result.n_tasks / wall


def test_disabled_faults_overhead(benchmark, emit):
    def _measure():
        # Median-of-N per leg (first leg absorbs the warmup): scheduler
        # jitter on a shared machine only ever slows a round down, so
        # the median is robust to the slow-outlier noise shape.
        return {
            "disabled_1": rate_stats(lambda: _rate(None)),
            "faulty": rate_stats(lambda: _rate(FAULTY), warmup=False),
            "disabled_2": rate_stats(lambda: _rate(None), warmup=False),
        }

    stats = run_once(benchmark, _measure)
    rates = {leg: s["median"] for leg, s in stats.items()}

    disabled = max(rates["disabled_1"], rates["disabled_2"])
    faulty = rates["faulty"]
    spread = abs(rates["disabled_1"] - rates["disabled_2"]) / disabled
    overhead = 1.0 - min(rates["disabled_1"], rates["disabled_2"]) / disabled
    faulty_cost = 1.0 - faulty / disabled

    write_bench(BENCH_FILE, {
        "tasks_per_wall_second_disabled": disabled,
        "tasks_per_wall_second_faulty": faulty,
        "disabled_round_spread": spread,
        "faulty_slowdown": faulty_cost,
        "spread": stats,
        "rounds": BENCH_ROUNDS,
    })

    emit(f"faults off: {disabled:,.0f} tasks/s  "
         f"on: {faulty:,.0f} tasks/s  "
         f"(faulty slowdown {faulty_cost:+.1%}, "
         f"disabled round spread {spread:.1%})\n"
         f"wrote {BENCH_FILE}")

    # The two disabled rounds ARE the disabled path; their spread is
    # pure measurement noise.  When it exceeds the allowance the
    # machine cannot certify the overhead either way, so skip rather
    # than fail — the hard regression gate is the kernel-baseline
    # ratio asserted below, and the JSON tracks the trend.
    if overhead > MAX_DISABLED_OVERHEAD:
        import pytest

        pytest.skip(f"disabled-path rounds differ by {overhead:.1%} "
                    f"(> {MAX_DISABLED_OVERHEAD:.0%}); machine too noisy "
                    f"to certify overhead")


def test_disabled_matches_kernel_baseline(emit):
    """Compare against BENCH_kernel.json when the kernel benchmark ran
    earlier in the same session (pytest runs files alphabetically, so
    ``test_perf_kernel`` precedes this file)."""
    kernel_file = BENCH_FILE.parent / "BENCH_kernel.json"
    if not kernel_file.is_file():
        emit("BENCH_kernel.json absent; baseline comparison skipped")
        return
    baseline = json.loads(kernel_file.read_text())["tasks_per_wall_second"]
    ours = json.loads(BENCH_FILE.read_text())[
        "tasks_per_wall_second_disabled"]
    ratio = ours / baseline
    emit(f"faults-disabled rate vs kernel baseline: {ratio:.2f}x")
    # Same workload, same code path: anything below this is a real
    # regression, not noise.
    assert ratio > 0.75, (
        f"faults-disabled run reached only {ratio:.2f}x of the "
        f"kernel benchmark baseline ({ours:,.0f} vs {baseline:,.0f})")
