"""Ablation — Flux FCFS vs EASY backfill on heterogeneous mixes.

Fig. 2's scheduler box lists "FCFS, backfilling, or customized
co-scheduling strategies"; the IMPECCABLE runs depend on backfill to
keep small tasks flowing around wide MPI jobs.  This ablation
quantifies that on an IMPECCABLE-like width mix.
"""

from __future__ import annotations

from repro.analytics import makespan, utilization
from repro.analytics.report import format_table
from repro.core import PartitionSpec, PilotDescription, Session
from repro.platform import ResourceSpec, frontier
from repro.core.description import TaskDescription

from .conftest import run_once

N_NODES = 16


def _mix():
    """Alternating wide MPI jobs and swarms of small tasks."""
    tasks = []
    for round_ in range(4):
        tasks.append(TaskDescription(
            executable="wide-mpi", duration=120.0,
            resources=ResourceSpec(cores=N_NODES * 56,
                                   exclusive_nodes=True)))
        tasks.extend(TaskDescription(
            executable="small", duration=30.0,
            resources=ResourceSpec(cores=1)) for _ in range(100))
    return tasks


def _run(policy: str):
    session = Session(cluster=frontier(N_NODES), seed=43)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=N_NODES,
        partitions=(PartitionSpec("flux", policy=policy),)))
    tmgr.add_pilot(pilot)
    tasks = tmgr.submit_tasks(_mix())
    session.run(tmgr.wait_tasks())
    span = makespan(tasks)
    util = utilization(tasks, total_cores=N_NODES * 56)
    session.close()
    return span, util


def test_ablation_backfill_policy(benchmark, emit):
    out = {}

    def run():
        for policy in ("fcfs", "easy"):
            out[policy] = _run(policy)
        return out

    run_once(benchmark, run)
    emit("Ablation: Flux scheduling policy on a wide+small mix "
         f"({N_NODES} nodes)\n" + format_table(
             ["policy", "makespan [s]", "utilization"],
             [(k, round(v[0], 1), f"{100 * v[1]:.1f} %")
              for k, v in out.items()]))

    fcfs_span, fcfs_util = out["fcfs"]
    easy_span, easy_util = out["easy"]
    # Backfill flows the small tasks around the wide jobs: shorter
    # makespan and higher utilization.
    assert easy_span <= fcfs_span
    assert easy_util >= fcfs_util
