#!/usr/bin/env python3
"""Hybrid AI-HPC workload: MPI simulations + ML inference in one pilot.

This reproduces the paper's motivating scenario (§1-§2): a single
workflow mixing

* tightly coupled multi-node MPI simulation tasks (executables),
* GPU model-training tasks (executables with GPUs), and
* bursts of short in-memory Python inference functions,

executed concurrently through *two* runtime backends inside one
allocation — Flux for the executables (hierarchical co-scheduling),
Dragon for the functions (high-throughput in-memory dispatch) — with
RP's router assigning each task to the matching execution model.

Run with::

    python examples/hybrid_ai_hpc_workload.py
"""

from collections import Counter

from repro import (
    PartitionSpec,
    PilotDescription,
    ResourceSpec,
    Session,
    TaskDescription,
    frontier,
)
from repro.analytics import makespan, task_throughput, utilization
from repro.analytics.report import format_table


def build_workload():
    """The three task classes of a hybrid campaign iteration."""
    simulations = [
        TaskDescription(
            executable="mpi-md-sim", mode="executable",
            resources=ResourceSpec(cores=224, exclusive_nodes=True),
            duration=300.0, tags={"class": "simulation"})
        for _ in range(12)
    ]
    training = [
        TaskDescription(
            executable="train-surrogate", mode="executable",
            resources=ResourceSpec(cores=56, gpus=8),
            duration=600.0, tags={"class": "training"})
        for _ in range(2)
    ]
    inference = [
        TaskDescription(
            executable="surrogate-inference", mode="function",
            resources=ResourceSpec(cores=1),
            duration=5.0, tags={"class": "inference"})
        for _ in range(2000)
    ]
    return simulations + training + inference


def main() -> None:
    session = Session(cluster=frontier(32), seed=7)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()

    # 32 nodes: 24 for Flux (simulations/training), 8 for Dragon
    # (inference functions), each backend with multiple instances.
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=32,
        partitions=(PartitionSpec("flux", n_instances=2, nodes=24),
                    PartitionSpec("dragon", n_instances=2, nodes=8)),
    ))
    tmgr.add_pilot(pilot)

    tasks = tmgr.submit_tasks(build_workload())
    session.run(tmgr.wait_tasks())

    by_class = Counter((t.description.tags["class"], t.backend)
                       for t in tasks)
    rows = [(cls, backend, n) for (cls, backend), n in sorted(by_class.items())]
    print(format_table(["task class", "backend", "count"], rows))

    total_cores = 32 * 56
    print(f"\nall succeeded  : {all(t.succeeded for t in tasks)}")
    print(f"makespan       : {makespan(tasks):,.1f} s")
    print(f"peak throughput: {task_throughput(tasks).peak:.0f} tasks/s")
    print(f"core util      : "
          f"{100 * utilization(tasks, total_cores):.1f} %")

    # The router sent every executable to Flux and every function to
    # Dragon — the paper's task-type-aware backend selection.
    assert by_class[("simulation", "flux")] == 12
    assert by_class[("inference", "dragon")] == 2000
    session.close()


if __name__ == "__main__":
    main()
