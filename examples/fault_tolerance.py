#!/usr/bin/env python3
"""Fault tolerance: instance crashes, retries, and backend failover.

Demonstrates RP's failure-handling framework (§3.2):

1. a Flux instance crashes mid-run — its tasks fail back to the
   agent, and tasks with retries left are re-routed to the surviving
   instance;
2. a Dragon runtime hangs at startup — the agent's watchdog aborts
   it and removes the backend; function tasks fall back to Flux.

Run with::

    python examples/fault_tolerance.py
"""

from repro import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
    frontier,
)
from repro.core.agent.executor_dragon import DragonExecutor


def crash_recovery_demo() -> None:
    print("=== 1. Flux instance crash with task retries ===")
    session = Session(cluster=frontier(8), seed=3)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=8, partitions=(PartitionSpec("flux", n_instances=2),)))
    tmgr.add_pilot(pilot)

    tasks = tmgr.submit_tasks([
        TaskDescription(duration=300.0, retries=1) for _ in range(100)])

    # Let work start, then kill one of the two Flux instances.
    session.run(until=session.now + 60.0)
    executor = pilot.agent.executors["flux"]
    victim = executor.hierarchy.instances[0]
    print(f"t={session.now:7.1f}s  crashing {victim.instance_id} "
          f"({victim.n_running} tasks running there)")
    victim.crash("injected broker failure")

    session.run(tmgr.wait_tasks())
    retried = sum(1 for t in tasks if t.attempts > 0)
    print(f"t={session.now:7.1f}s  all finished: "
          f"{sum(t.succeeded for t in tasks)}/100 succeeded, "
          f"{retried} recovered via retry on the surviving instance")
    session.close()


def startup_watchdog_demo() -> None:
    print("\n=== 2. Dragon startup hang -> watchdog -> Flux fallback ===")
    session = Session(cluster=frontier(8), seed=4)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()

    # Patch the Dragon executor so its runtime hangs during bootstrap.
    original = DragonExecutor.__init__

    def hanging_init(self, agent, allocation, n_instances=1,
                     fail_startup=False):
        original(self, agent, allocation, n_instances=n_instances,
                 fail_startup=True)

    DragonExecutor.__init__ = hanging_init
    try:
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=8, partitions=(PartitionSpec("flux", nodes=4),
                                 PartitionSpec("dragon", nodes=4))))
        tmgr.add_pilot(pilot)
        session.run(pilot.active_event())
    finally:
        DragonExecutor.__init__ = original

    print(f"t={session.now:7.1f}s  pilot ACTIVE with backends: "
          f"{pilot.agent.available_backends} "
          "(dragon aborted by the startup watchdog)")

    tasks = tmgr.submit_tasks([
        TaskDescription(mode="function", duration=10.0) for _ in range(50)])
    session.run(tmgr.wait_tasks())
    backends = {t.backend for t in tasks}
    print(f"t={session.now:7.1f}s  50 function tasks done on fallback "
          f"backend(s): {backends}")
    session.close()


if __name__ == "__main__":
    crash_recovery_demo()
    startup_watchdog_demo()
