#!/usr/bin/env python3
"""ESMACS-like MPI ensemble: derive coupled-task durations, then run.

The paper's ensemble-simulation workflows are tightly coupled MPI
jobs (§2).  This example shows the intended two-level modelling flow:

1. model one ensemble member as compute/all-reduce cycles over the
   simulated fabric (:mod:`repro.mpi`) to obtain a realistic duration
   *including communication overhead*;
2. submit the ensemble as co-scheduled multi-node tasks through a
   pilot with a Flux backend, and measure the run.

Run with::

    python examples/mpi_ensemble.py
"""

from repro import (
    PartitionSpec,
    PilotDescription,
    ResourceSpec,
    Session,
    TaskDescription,
    frontier,
)
from repro.analytics import makespan, utilization
from repro.mpi import SimComm, allreduce_time
from repro.sim import Environment

MEMBERS = 8            # ensemble members
NODES_PER_MEMBER = 4   # each member is a 4-node MPI job
RANKS_PER_MEMBER = NODES_PER_MEMBER * 56
TIMESTEPS = 200
COMPUTE_PER_STEP = 0.5        # s of numerics per timestep
HALO_BYTES = 32e6             # per-step gradient/halo exchange


def model_member_duration() -> tuple:
    """Simulate one member's compute/communicate loop."""
    env = Environment()
    comm = SimComm(env, size=RANKS_PER_MEMBER, n_nodes=NODES_PER_MEMBER)

    def member(env, comm):
        for _ in range(TIMESTEPS):
            yield env.timeout(COMPUTE_PER_STEP)
            yield from comm.allreduce(HALO_BYTES)

    env.run(env.process(member(env, comm)))
    total = env.now
    comm_time = TIMESTEPS * allreduce_time(
        comm.params, comm.size, HALO_BYTES, spans_nodes=True)
    return total, comm_time


def main() -> None:
    duration, comm_time = model_member_duration()
    print(f"one member: {TIMESTEPS} steps -> {duration:,.1f} s "
          f"({100 * comm_time / duration:.2f} % communication)")

    session = Session(cluster=frontier(MEMBERS * NODES_PER_MEMBER), seed=5)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=MEMBERS * NODES_PER_MEMBER,
        partitions=(PartitionSpec("flux"),)))
    tmgr.add_pilot(pilot)

    ensemble = tmgr.submit_tasks([
        TaskDescription(
            executable="esmacs-member", mode="executable",
            resources=ResourceSpec(cores=RANKS_PER_MEMBER,
                                   exclusive_nodes=True),
            duration=duration, tags={"member": i})
        for i in range(MEMBERS)
    ])
    session.run(tmgr.wait_tasks())

    total_cores = MEMBERS * NODES_PER_MEMBER * 56
    print(f"ensemble of {MEMBERS} x {NODES_PER_MEMBER}-node members:")
    print(f"  all succeeded : {all(t.succeeded for t in ensemble)}")
    print(f"  makespan      : {makespan(ensemble):,.1f} s "
          f"(single member: {duration:,.1f} s)")
    print(f"  utilization   : "
          f"{100 * utilization(ensemble, total_cores):.1f} %")
    session.close()


if __name__ == "__main__":
    main()
