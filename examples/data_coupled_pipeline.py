#!/usr/bin/env python3
"""Data-coupled pipeline over Dragon shared-memory channels (§2).

IMPECCABLE's intermediate coupling class: "asynchronous pipelines of
Python functions communicating through in-memory data structures or
message queues" — e.g. REINVENT generation feeding SST-guided patch
selection.  This example builds that pattern directly on the Dragon
substrate: a generator stage, a scorer stage and a selector stage
exchange batches through bounded :class:`ShmemChannel` queues, with
backpressure when a stage falls behind.

Run with::

    python examples/data_coupled_pipeline.py
"""

from repro.dragon import ShmemChannel
from repro.platform import frontier
from repro.sim import Environment, RngStreams

N_BATCHES = 200
CHANNEL_CAPACITY = 8


def main() -> None:
    env = Environment()
    rng = RngStreams(seed=99)
    cluster = frontier(2)
    cluster.allocate_nodes(2)  # the pipeline's resource footprint

    generated = ShmemChannel(env, capacity=CHANNEL_CAPACITY,
                             name="generated")
    scored = ShmemChannel(env, capacity=CHANNEL_CAPACITY, name="scored")
    stats = {"generated": 0, "scored": 0, "selected": 0,
             "best": float("-inf")}

    def generator(env):
        """REINVENT-like molecule generator (fast, bursty)."""
        for batch in range(N_BATCHES):
            yield env.timeout(rng.lognormal_latency("gen", 0.05, cv=0.4))
            yield from generated.put({"batch": batch,
                                      "smiles": f"mol-{batch:04d}"})
            stats["generated"] += 1
        generated.close()

    def scorer(env, worker_id):
        """Surrogate-inference scorers (two workers, slower)."""
        while True:
            try:
                item = yield generated.get()
            except Exception:
                return
            yield env.timeout(rng.lognormal_latency("score", 0.18, cv=0.3))
            item["score"] = float(rng.stream("scores").normal(0.0, 1.0))
            item["scored_by"] = worker_id
            yield from scored.put(item)
            stats["scored"] += 1

    def selector(env):
        """Patch selection: consumes scored batches, keeps the best."""
        for _ in range(N_BATCHES):
            item = yield scored.get()
            yield env.timeout(0.01)
            stats["selected"] += 1
            stats["best"] = max(stats["best"], item["score"])

    env.process(generator(env))
    for worker_id in range(2):
        env.process(scorer(env, worker_id))
    done = env.process(selector(env))
    env.run(done)

    print(f"pipeline finished at t={env.now:,.2f} s (simulated)")
    print(f"generated={stats['generated']} scored={stats['scored']} "
          f"selected={stats['selected']}")
    print(f"best score: {stats['best']:.3f}")
    print(f"channel hops: generated={generated.n_puts} "
          f"scored={scored.n_puts}")
    # Backpressure kept the in-flight window bounded the whole time.
    assert stats["selected"] == N_BATCHES


if __name__ == "__main__":
    main()
