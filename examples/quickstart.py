#!/usr/bin/env python3
"""Quickstart: run 500 tasks through a pilot with a Flux backend.

This is the minimal end-to-end flow of the library:

1. create a :class:`~repro.core.session.Session` on a simulated
   Frontier-like cluster;
2. submit a pilot (resource placeholder) whose agent deploys a Flux
   instance on the allocation;
3. submit tasks and wait for completion;
4. compute the paper's metrics from the run.

Run with::

    python examples/quickstart.py
"""

from repro import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
    frontier,
)
from repro.analytics import makespan, task_throughput, utilization


def main() -> None:
    # A 16-node slice of a Frontier-like machine (56 cores + 8 GPUs/node).
    session = Session(cluster=frontier(16), seed=1)

    pmgr = session.pilot_manager()
    tmgr = session.task_manager()

    # One pilot over all 16 nodes, executing tasks through Flux.
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=16,
        partitions=(PartitionSpec("flux", n_instances=4),),
    ))
    tmgr.add_pilot(pilot)

    # 500 single-core tasks sleeping 60 simulated seconds each.
    tasks = tmgr.submit_tasks(
        [TaskDescription(executable="sleep-60", duration=60.0)
         for _ in range(500)])

    # Advance the simulation until every task reached a final state.
    session.run(tmgr.wait_tasks())

    done = sum(t.succeeded for t in tasks)
    stats = task_throughput(tasks)
    util = utilization(tasks, total_cores=16 * 56)
    print(f"tasks completed : {done}/{len(tasks)}")
    print(f"simulated time  : {session.now:,.1f} s")
    print(f"throughput      : {stats.avg:.1f} tasks/s avg, "
          f"{stats.peak:.0f} tasks/s peak")
    print(f"utilization     : {100 * util:.1f} % of 896 cores")
    print(f"makespan        : {makespan(tasks):,.1f} s")
    session.close()


if __name__ == "__main__":
    main()
