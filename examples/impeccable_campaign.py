#!/usr/bin/env python3
"""Run a reduced IMPECCABLE drug-discovery campaign (§2, §4.2).

Executes three generations of the six-workflow campaign — docking,
surrogate training/inference, physics-based scoring, ensemble
simulation and generative design — on a 64-node pilot with a Flux
backend using EASY backfill, then prints the per-stage execution
spans and the run's concurrency profile.

Run with::

    python examples/impeccable_campaign.py
"""

from repro import PartitionSpec, PilotDescription, Session, frontier
from repro.analytics import (
    concurrency_series,
    makespan,
    utilization,
)
from repro.analytics.report import format_series, format_table
from repro.workloads import CampaignRunner

GENERATIONS = 3
NODES = 64


def main() -> None:
    session = Session(cluster=frontier(NODES), seed=13)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=NODES,
        partitions=(PartitionSpec("flux", n_instances=2, policy="easy"),),
    ))
    tmgr.add_pilot(pilot)

    runner = CampaignRunner(session, tmgr, pilot, n_nodes=NODES,
                            generations=GENERATIONS, adaptive=True)
    session.run(runner.start())
    result = runner.result

    rows = []
    for (gen, stage), (begin, end) in sorted(result.stage_spans.items()):
        n = sum(1 for t in result.tasks
                if t.description.tags["generation"] == gen
                and t.description.tags["workflow"] == stage)
        rows.append((gen, stage, n, round(begin), round(end)))
    print(format_table(["gen", "stage", "tasks", "start [s]", "end [s]"],
                       rows))

    total_cores = NODES * 56
    total_gpus = NODES * 8
    print(f"\ncampaign tasks : {result.n_tasks} "
          f"(all ok: {all(t.succeeded for t in result.tasks)})")
    print(f"makespan       : {makespan(result.tasks):,.0f} s")
    print(f"CPU utilization: "
          f"{100 * utilization(result.tasks, total_cores):.1f} %")
    print(f"GPU utilization: "
          f"{100 * utilization(result.tasks, total_gpus, resource='gpus'):.1f} %")

    series = concurrency_series(result.tasks, resolution=60.0)
    print()
    print(format_series(series.times, series.values,
                        label="running tasks"))
    session.close()


if __name__ == "__main__":
    main()
