#!/usr/bin/env python3
"""A drug-candidate scoring pipeline expressed as a workflow DAG.

Shows the generic :class:`~repro.workloads.dag.Workflow` API on top of
the pilot runtime: named tasks with dependencies, automatic
concurrency between independent branches, and skip-dependents failure
semantics when a branch breaks.

Run with::

    python examples/workflow_dag.py
"""

from repro import (
    PartitionSpec,
    PilotDescription,
    ResourceSpec,
    Session,
    TaskDescription,
    frontier,
)
from repro.workloads import SKIP_DEPENDENTS, Workflow, WorkflowRunner


def build_pipeline(poisoned: bool = False) -> Workflow:
    """prepare -> dock xN -> (rescore, cluster) -> report."""
    wf = Workflow("candidate-scoring")
    wf.add("prepare", TaskDescription(
        executable="prep-library", duration=30.0, input_staging=2,
        staging_item_mb=200.0))
    for i in range(6):
        wf.add(f"dock{i}", TaskDescription(
            executable="autodock", duration=120.0,
            resources=ResourceSpec(cores=56),
            fail=(poisoned and i == 3)),
            depends_on=("prepare",))
    docks = tuple(f"dock{i}" for i in range(6))
    wf.add("rescore", TaskDescription(
        executable="mmpbsa-rescore", duration=180.0,
        resources=ResourceSpec(cores=224)), depends_on=docks)
    wf.add("cluster", TaskDescription(
        executable="pose-cluster", duration=60.0), depends_on=docks)
    wf.add("report", TaskDescription(
        executable="report", duration=10.0, output_staging=1),
        depends_on=("rescore", "cluster"))
    return wf


def run(poisoned: bool) -> None:
    session = Session(cluster=frontier(8), seed=6)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=8, partitions=(PartitionSpec("flux"),)))
    tmgr.add_pilot(pilot)

    wf = build_pipeline(poisoned)
    print(f"critical path (ideal): {wf.critical_path_length():.0f} s")
    runner = WorkflowRunner(session, tmgr, wf,
                            failure_policy=SKIP_DEPENDENTS)
    session.run(runner.start())

    label = "poisoned" if poisoned else "clean"
    print(f"[{label}] finished at t={session.now:,.1f} s; "
          f"succeeded={runner.result.succeeded}")
    for name in wf.topological_order():
        task = runner.result.tasks.get(name)
        status = task.state if task else "SKIPPED"
        print(f"  {name:10s} {status}")
    session.close()
    print()


if __name__ == "__main__":
    run(poisoned=False)
    run(poisoned=True)
