#!/usr/bin/env python3
"""Active-learning loop with persistent services (§2, emerging use cases).

"Reinforcement learning agents, active learning loops ... often
require persistent services (e.g., learners, replay buffers), dynamic
spawning of short-lived workers, and rapid data exchange without
blocking synchronization."

This example builds exactly that on the library's service layer:

* a **learner** service (GPU) and a **replay buffer** service stay up
  for the whole campaign;
* each iteration spawns a batch of short simulation tasks; their
  "results" stream into the replay buffer via endpoint calls;
* the learner consumes the buffer and decides the next batch size
  (adaptive control), shrinking as the model converges.

Run with::

    python examples/active_learning_loop.py
"""

from repro import (
    PartitionSpec,
    PilotDescription,
    ResourceSpec,
    Session,
    TaskDescription,
    frontier,
)
from repro.core import ServiceDescription

ITERATIONS = 5


def main() -> None:
    session = Session(cluster=frontier(16), seed=8)
    env = session.env
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=16, partitions=(PartitionSpec("flux", n_instances=2),
                              PartitionSpec("dragon", n_instances=2))))
    tmgr.add_pilot(pilot)
    session.run(pilot.active_event())

    learner = pilot.start_service(ServiceDescription(
        name="learner", resources=ResourceSpec(cores=8, gpus=4),
        startup_time=15.0, service_latency=0.5, concurrency=2))
    replay = pilot.start_service(ServiceDescription(
        name="replay-buffer", resources=ResourceSpec(cores=4),
        startup_time=3.0, service_latency=0.01, concurrency=8))

    buffer_size = [0]
    replay.endpoint.set_handler(
        lambda item: buffer_size.__setitem__(0, buffer_size[0] + 1))
    learner.endpoint.set_handler(
        lambda _: max(8, 64 - 12 * buffer_size[0] // 32))

    def campaign(env):
        yield learner.ready_event()
        yield replay.ready_event()
        batch = 64
        for it in range(ITERATIONS):
            tasks = tmgr.submit_tasks([
                TaskDescription(executable="md-sample", mode="function",
                                duration=20.0, tags={"iter": it})
                for _ in range(batch)])
            yield tmgr.wait_tasks(tasks)
            # Stream results into the replay buffer.
            pushes = [replay.endpoint.call(f"traj-{it}-{k}")
                      for k in range(len(tasks))]
            yield env.all_of(pushes)
            # Ask the learner for the next batch size.
            reply = learner.endpoint.call("train-step")
            batch = yield reply
            print(f"t={env.now:8.1f}s  iter {it}: {len(tasks)} samples, "
                  f"buffer={buffer_size[0]}, next batch={batch}")

    session.run(env.process(campaign(env)))
    print(f"\nfinal buffer size : {buffer_size[0]}")
    print(f"learner calls     : {learner.endpoint.n_completed}")
    print(f"services still up : {learner.is_ready and replay.is_ready}")
    session.close()


if __name__ == "__main__":
    main()
