"""Unit tests for the Dragon worker pool."""

import pytest

from repro.dragon import WorkerPool
from repro.exceptions import DragonError
from repro.platform import generic
from repro.sim import Environment


@pytest.fixture
def pool(env):
    alloc = generic(2).allocate_nodes(2)  # 16 cores
    return WorkerPool(env, alloc)


class TestCapacity:
    def test_one_worker_per_core(self, pool):
        assert pool.capacity == 16

    def test_acquire_release(self, env, pool):
        req = pool.acquire()
        assert req.triggered
        assert pool.busy == 1
        req.release()
        assert pool.busy == 0
        assert pool.idle == 16

    def test_blocks_when_full(self, env, pool):
        reqs = [pool.acquire() for _ in range(16)]
        extra = pool.acquire()
        assert not extra.triggered
        reqs[0].release()
        assert extra.triggered


class TestDispatchCosts:
    def test_function_cold_then_warm(self, env, pool):
        slot = pool.acquire()
        first = pool.dispatch_cost("function")
        assert first == pool.cold_start_cost
        slot.release()
        slot = pool.acquire()
        second = pool.dispatch_cost("function")
        assert second == pool.warm_start_cost
        assert pool.n_cold_dispatch == 1
        assert pool.n_warm_dispatch == 1

    def test_executable_always_cold(self, env, pool):
        for _ in range(3):
            slot = pool.acquire()
            assert pool.dispatch_cost("executable") == pool.cold_start_cost
            slot.release()
        assert pool.n_cold_dispatch == 3
        assert pool.n_warm_dispatch == 0

    def test_unknown_mode_raises(self, pool):
        with pytest.raises(DragonError):
            pool.dispatch_cost("quantum")

    def test_warm_pool_grows_with_concurrency(self, env, pool):
        slots = [pool.acquire() for _ in range(4)]
        costs = [pool.dispatch_cost("function") for _ in range(4)]
        assert costs == [pool.cold_start_cost] * 4
        for s in slots:
            s.release()
        slots = [pool.acquire() for _ in range(4)]
        costs = [pool.dispatch_cost("function") for _ in range(4)]
        assert costs == [pool.warm_start_cost] * 4
