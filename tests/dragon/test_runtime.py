"""Unit tests for the Dragon runtime."""

import pytest

from repro.dragon import (
    DragonRuntime,
    DragonState,
    DragonTask,
    MODE_EXEC,
    MODE_FUNC,
)
from repro.exceptions import DragonError, RuntimeStartupError
from repro.platform import DETERMINISTIC_LATENCIES, FRONTIER_LATENCIES, generic
from repro.sim import Environment, RngStreams


def make_runtime(env, rng, n_nodes=4, latencies=FRONTIER_LATENCIES, **kw):
    alloc = generic(n_nodes).allocate_nodes(n_nodes)
    return DragonRuntime(env, alloc, latencies, rng,
                         instance_id="dragon.test", **kw)


class TestTaskValidation:
    def test_modes(self):
        DragonTask(task_id="t", mode=MODE_EXEC)
        DragonTask(task_id="t", mode=MODE_FUNC)
        with pytest.raises(DragonError):
            DragonTask(task_id="t", mode="container")

    def test_negative_duration(self):
        with pytest.raises(DragonError):
            DragonTask(task_id="t", duration=-1)


class TestLifecycle:
    def test_bootstrap_near_9s(self, env, rng):
        rt = make_runtime(env, rng, latencies=DETERMINISTIC_LATENCIES)
        env.run(env.process(rt.start()))
        assert rt.is_ready
        lat = DETERMINISTIC_LATENCIES
        assert env.now == pytest.approx(lat.dragon_startup_mean
                                        + 2 * lat.dragon_startup_per_log2node)

    def test_double_start_raises(self, env, rng):
        rt = make_runtime(env, rng)
        env.run(env.process(rt.start()))
        with pytest.raises(RuntimeStartupError):
            env.run(env.process(rt.start()))

    def test_submit_before_ready_raises(self, env, rng):
        rt = make_runtime(env, rng)
        with pytest.raises(RuntimeStartupError):
            rt.submit(DragonTask(task_id="t"))

    def test_fail_startup_hangs(self, env, rng):
        rt = make_runtime(env, rng, fail_startup=True)
        env.process(rt.start())
        env.run(until=1000.0)
        assert not rt.is_ready
        assert rt.state == DragonState.STARTING


class TestExecution:
    def _drain(self, env, rt, n):
        """Collect n completion events."""
        completions = []

        def watcher(env, rt):
            for _ in range(n):
                c = yield rt.completion_pipe.recv()
                completions.append(c)

        env.process(watcher(env, rt))
        env.run()
        return completions

    def test_tasks_complete(self, env, rng):
        rt = make_runtime(env, rng)
        env.run(env.process(rt.start()))
        for i in range(20):
            rt.submit(DragonTask(task_id=f"t{i}", duration=2.0))
        completions = self._drain(env, rt, 20)
        assert len(completions) == 20
        assert all(c.ok for c in completions)
        assert all(c.stop_time - c.start_time == pytest.approx(2.0)
                   for c in completions)

    def test_failed_task_reports_error(self, env, rng):
        rt = make_runtime(env, rng)
        env.run(env.process(rt.start()))
        rt.submit(DragonTask(task_id="bad", fail=True))
        completions = self._drain(env, rt, 1)
        assert not completions[0].ok
        assert "failed" in completions[0].error
        assert rt.n_failed == 1

    def test_function_dispatch_faster_than_exec(self, env, rng):
        lat = DETERMINISTIC_LATENCIES
        rt_exec = make_runtime(env, rng, latencies=lat)
        env.run(env.process(rt_exec.start()))
        for i in range(200):
            rt_exec.submit(DragonTask(task_id=f"e{i}", mode=MODE_EXEC))
        exec_done = env.run(env.process(_wait_all(env, rt_exec, 200))) or env.now
        exec_span = env.now

        env2 = Environment()
        rng2 = RngStreams(1234)
        rt_func = make_runtime(env2, rng2, latencies=lat)
        env2.run(env2.process(rt_func.start()))
        for i in range(200):
            rt_func.submit(DragonTask(task_id=f"f{i}", mode=MODE_FUNC))
        env2.run(env2.process(_wait_all(env2, rt_func, 200)))
        func_span = env2.now
        assert func_span < exec_span

    def test_on_task_start_hook(self, env, rng):
        rt = make_runtime(env, rng)
        env.run(env.process(rt.start()))
        started = []
        rt.on_task_start = started.append
        rt.submit(DragonTask(task_id="t1", duration=1.0))
        self._drain(env, rt, 1)
        assert started == ["t1"]

    def test_centralized_gs_throughput_declines_with_nodes(self, env, rng):
        """Fig. 5(c): exec-task rate drops at larger node counts."""
        lat = DETERMINISTIC_LATENCIES
        rates = {}
        for n in (4, 64):
            e = Environment()
            r = RngStreams(0)
            rt = make_runtime(e, r, n_nodes=n, latencies=lat)
            e.run(e.process(rt.start()))
            t0 = e.now
            for i in range(300):
                rt.submit(DragonTask(task_id=f"t{i}", mode=MODE_EXEC))
            e.run(e.process(_wait_all(e, rt, 300)))
            rates[n] = 300 / (e.now - t0)
        assert rates[4] > rates[64]

    def test_pool_bounds_concurrency(self, env, rng):
        rt = make_runtime(env, rng, n_nodes=1)  # 8 workers
        env.run(env.process(rt.start()))
        running = [0]
        peak = [0]

        def on_start(tid):
            running[0] += 1
            peak[0] = max(peak[0], running[0])

        rt.on_task_start = on_start

        def watcher(env, rt):
            for _ in range(32):
                yield rt.completion_pipe.recv()
                running[0] -= 1

        for i in range(32):
            rt.submit(DragonTask(task_id=f"t{i}", duration=10.0))
        env.process(watcher(env, rt))
        env.run()
        assert peak[0] <= 8


class TestCrash:
    def test_crash_fails_queued_tasks(self, env, rng):
        rt = make_runtime(env, rng)
        env.run(env.process(rt.start()))
        # Submit with zero pipe latency so tasks sit in the pipe store.
        rt.task_pipe.latency = 0.0
        for i in range(5):
            rt.task_pipe.send(DragonTask(task_id=f"t{i}", duration=100.0))
        rt.crash("runtime crashed")
        assert rt.state == DragonState.FAILED
        assert rt.n_failed >= 4  # queued tasks failed (one may be in GS)

    def test_shutdown_idempotent(self, env, rng):
        rt = make_runtime(env, rng)
        env.run(env.process(rt.start()))
        rt.shutdown()
        rt.shutdown()
        assert rt.state == DragonState.STOPPED


def _wait_all(env, rt, n):
    for _ in range(n):
        yield rt.completion_pipe.recv()
