"""Unit tests for Dragon channels (zmq pipes + shmem queues)."""

import pytest

from repro.dragon import ShmemChannel, ZmqPipe
from repro.exceptions import ChannelError
from repro.sim import Environment


class TestZmqPipe:
    def test_send_recv(self, env):
        pipe = ZmqPipe(env, latency=0.0)
        pipe.send("msg")
        got = pipe.recv()
        env.run()
        assert got.value == "msg"

    def test_latency_applied(self, env):
        pipe = ZmqPipe(env, latency=0.25)
        arrivals = []

        def consumer(env, pipe):
            msg = yield pipe.recv()
            arrivals.append((env.now, msg))

        env.process(consumer(env, pipe))
        pipe.send("x")
        env.run()
        assert arrivals == [(0.25, "x")]

    def test_fifo_order(self, env):
        pipe = ZmqPipe(env, latency=0.001)
        got = []

        def consumer(env, pipe):
            for _ in range(5):
                msg = yield pipe.recv()
                got.append(msg)

        env.process(consumer(env, pipe))
        for i in range(5):
            pipe.send(i)
        env.run()
        assert got == list(range(5))

    def test_counters(self, env):
        pipe = ZmqPipe(env, latency=0.0)
        pipe.send(1)
        pipe.send(2)
        assert pipe.n_sent == 2


class TestShmemChannel:
    def test_put_get_roundtrip(self, env):
        chan = ShmemChannel(env, hop_latency=0.0)
        results = []

        def producer(env, chan):
            yield from chan.put("data")

        def consumer(env, chan):
            item = yield chan.get()
            results.append(item)

        env.process(producer(env, chan))
        env.process(consumer(env, chan))
        env.run()
        assert results == ["data"]

    def test_hop_latency(self, env):
        chan = ShmemChannel(env, hop_latency=0.001)
        stamps = []

        def producer(env, chan):
            yield from chan.put("x")
            stamps.append(env.now)

        env.process(producer(env, chan))
        env.run()
        assert stamps == [pytest.approx(0.001)]

    def test_capacity_backpressure(self, env):
        chan = ShmemChannel(env, capacity=2, hop_latency=0.0)
        progress = []

        def producer(env, chan):
            for i in range(4):
                yield from chan.put(i)
                progress.append((env.now, i))

        def slow_consumer(env, chan):
            for _ in range(4):
                yield env.timeout(10)
                yield chan.get()

        env.process(producer(env, chan))
        env.process(slow_consumer(env, chan))
        env.run()
        # First two puts are immediate; later ones wait for gets.
        assert progress[0][0] == 0.0
        assert progress[1][0] == 0.0
        assert progress[2][0] >= 10.0
        assert progress[3][0] >= 20.0

    def test_capacity_validation(self, env):
        with pytest.raises(ChannelError):
            ShmemChannel(env, capacity=0)

    def test_close_fails_pending_gets(self, env):
        chan = ShmemChannel(env, hop_latency=0.0)
        outcome = []

        def consumer(env, chan):
            try:
                yield chan.get()
            except ChannelError:
                outcome.append("closed")

        env.process(consumer(env, chan))
        env.schedule(1.0, chan.close)
        env.run()
        assert outcome == ["closed"]

    def test_put_after_close_raises(self, env):
        chan = ShmemChannel(env)
        chan.close()
        with pytest.raises(ChannelError):
            next(chan.put("x"))

    def test_get_after_close_on_empty_raises(self, env):
        chan = ShmemChannel(env)
        chan.close()
        with pytest.raises(ChannelError):
            chan.get()

    def test_multi_producer_multi_consumer(self, env):
        chan = ShmemChannel(env, hop_latency=0.0)
        received = []

        def producer(env, chan, base):
            for i in range(10):
                yield from chan.put(base + i)

        def consumer(env, chan):
            for _ in range(10):
                item = yield chan.get()
                received.append(item)

        env.process(producer(env, chan, 0))
        env.process(producer(env, chan, 100))
        env.process(consumer(env, chan))
        env.process(consumer(env, chan))
        env.run()
        assert sorted(received) == sorted(
            list(range(10)) + list(range(100, 110)))
