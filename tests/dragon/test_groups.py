"""Tests for Dragon process groups (co-scheduled multi-rank launch)."""

import pytest

from repro.dragon import (
    DragonGroup,
    DragonGroupCompletion,
    DragonRuntime,
    DragonTask,
    MODE_FUNC,
)
from repro.exceptions import DragonError
from repro.platform import FRONTIER_LATENCIES, generic
from repro.sim import Environment, RngStreams


def make_runtime(env, rng, n_nodes=2):
    alloc = generic(n_nodes).allocate_nodes(n_nodes)  # 8 cores/node
    rt = DragonRuntime(env, alloc, FRONTIER_LATENCIES, rng,
                       instance_id="dragon.pg")
    env.run(env.process(rt.start()))
    return rt


def group_of(n, gid="g0", duration=5.0, fail_ranks=()):
    return DragonGroup(group_id=gid, ranks=tuple(
        DragonTask(task_id=f"{gid}.r{i}", mode=MODE_FUNC,
                   duration=duration, fail=(i in fail_ranks))
        for i in range(n)))


def drain(env, rt, n):
    got = []

    def watch(env, rt):
        for _ in range(n):
            got.append((yield rt.completion_pipe.recv()))

    env.process(watch(env, rt))
    env.run()
    return got


class TestValidation:
    def test_empty_group(self):
        with pytest.raises(DragonError):
            DragonGroup(group_id="g", ranks=())

    def test_duplicate_rank_ids(self):
        task = DragonTask(task_id="same")
        with pytest.raises(DragonError):
            DragonGroup(group_id="g", ranks=(task, task))

    def test_oversized_group_rejected(self, env, rng):
        rt = make_runtime(env, rng)
        with pytest.raises(DragonError):
            rt.submit_group(group_of(1000))


class TestExecution:
    def test_group_runs_and_reports(self, env, rng):
        rt = make_runtime(env, rng)
        rt.submit_group(group_of(4))
        msgs = drain(env, rt, 5)  # 4 rank completions + 1 group record
        groups = [m for m in msgs if isinstance(m, DragonGroupCompletion)]
        assert len(groups) == 1
        assert groups[0].ok
        assert rt.n_completed == 4

    def test_ranks_start_together(self, env, rng):
        rt = make_runtime(env, rng)
        starts = []
        rt.on_task_start = lambda tid: starts.append((tid, env.now))
        rt.submit_group(group_of(4))
        drain(env, rt, 5)
        times = [t for _, t in starts]
        assert max(times) - min(times) < 0.5  # co-launch, not staggered

    def test_group_waits_for_full_capacity(self, env, rng):
        """A 16-rank group on 16 workers must wait for busy singles."""
        rt = make_runtime(env, rng)  # 16 workers
        for i in range(8):
            rt.submit(DragonTask(task_id=f"single{i}", duration=30.0))
        rt.submit_group(group_of(16, duration=1.0))
        msgs = drain(env, rt, 8 + 16 + 1)
        group = next(m for m in msgs
                     if isinstance(m, DragonGroupCompletion))
        # The group could only start after the singles released slots.
        assert group.start_time >= 30.0

    def test_failed_rank_fails_group(self, env, rng):
        rt = make_runtime(env, rng)
        rt.submit_group(group_of(4, fail_ranks=(2,)))
        msgs = drain(env, rt, 5)
        group = next(m for m in msgs
                     if isinstance(m, DragonGroupCompletion))
        assert not group.ok
        assert len(group.errors) == 1
        assert rt.n_failed == 1
        assert rt.n_completed == 3

    def test_group_duration_is_longest_rank(self, env, rng):
        rt = make_runtime(env, rng)
        ranks = tuple(DragonTask(task_id=f"r{i}", mode=MODE_FUNC,
                                 duration=float(i + 1)) for i in range(4))
        rt.submit_group(DragonGroup(group_id="g", ranks=ranks))
        msgs = drain(env, rt, 5)
        group = next(m for m in msgs
                     if isinstance(m, DragonGroupCompletion))
        assert group.stop_time - group.start_time == pytest.approx(4.0,
                                                                   abs=0.1)

    def test_two_groups_serialize_without_deadlock(self, env, rng):
        """Two 12-rank groups on 16 workers cannot interleave their
        acquisitions (which would deadlock); they run back to back."""
        rt = make_runtime(env, rng)
        rt.submit_group(group_of(12, gid="a", duration=10.0))
        rt.submit_group(group_of(12, gid="b", duration=10.0))
        msgs = drain(env, rt, 24 + 2)
        groups = {m.group_id: m for m in msgs
                  if isinstance(m, DragonGroupCompletion)}
        assert groups["a"].ok and groups["b"].ok
        assert groups["b"].start_time >= groups["a"].stop_time

    def test_pool_never_oversubscribed_by_groups(self, env, rng):
        rt = make_runtime(env, rng)
        peak = [0]

        def monitor(env):
            while rt.n_completed < 28:
                peak[0] = max(peak[0], rt.pool.busy)
                yield env.timeout(0.5)

        env.process(monitor(env))
        rt.submit_group(group_of(10, gid="a", duration=5.0))
        rt.submit_group(group_of(10, gid="b", duration=5.0))
        for i in range(8):
            rt.submit(DragonTask(task_id=f"s{i}", duration=5.0))
        drain(env, rt, 28 + 2)
        assert peak[0] <= rt.pool.capacity
