"""End-to-end recovery behavior: retries, failover, blacklist, races."""

import pytest

from repro.analytics.events import TASK_ATTEMPT_FAILED
from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
    TaskState,
)
from repro.faults import FaultSpec, RetryPolicy
from repro.platform import generic


FAST_RETRY = RetryPolicy(backoff_base=0.2, jitter=0.0)


def make_session(partitions, nodes=8, seed=17, faults=None, cluster=None):
    session = Session(cluster=cluster or generic(nodes, 8, 0), seed=seed,
                      faults=faults)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(nodes=nodes,
                                                partitions=partitions))
    tmgr.add_pilot(pilot)
    session.run(pilot.active_event())
    return session, tmgr, pilot


class TestRetryTransitions:
    def test_infra_retry_goes_back_through_scheduling(self):
        spec = FaultSpec(retry=FAST_RETRY)
        session, tmgr, pilot = make_session(
            (PartitionSpec("flux", n_instances=2),), faults=spec)
        tasks = tmgr.submit_tasks([TaskDescription(duration=30.0)
                                   for _ in range(16)])
        victim = pilot.agent.executors["flux"].hierarchy.instances[0]
        session.env.schedule_callback(
            5.0, lambda: session.faults.inject_backend_crash(
                pilot.agent, "flux", victim))
        session.run(tmgr.wait_tasks())
        assert all(t.succeeded for t in tasks)
        hit = [t for t in tasks if t.attempts > 1]
        assert hit
        # The retried task went executing -> scheduling(retry) ->
        # executing again, and the failed attempt left a trace event.
        uid = hit[0].uid
        states = [name for (_t, name) in hit[0].state_history]
        assert states.count(TaskState.AGENT_EXECUTING) >= 2
        retry_events = [
            r for r in session.profiler.events_named(TASK_ATTEMPT_FAILED)
            if r.entity == uid]
        assert retry_events
        assert retry_events[0].meta["infra"] is True
        assert retry_events[0].meta["backend"] == "flux"

    def test_attempt_budget_exhaustion_fails_task(self):
        # One flux instance, crash it, no restart: every retry finds
        # infrastructure down until the budget runs out.
        spec = FaultSpec(retry=RetryPolicy(max_attempts=2, backoff_base=0.2,
                                           jitter=0.0,
                                           backend_restart=False))
        session, tmgr, pilot = make_session(
            (PartitionSpec("flux", n_instances=1),), faults=spec)
        tasks = tmgr.submit_tasks([TaskDescription(duration=30.0)
                                   for _ in range(4)])
        victim = pilot.agent.executors["flux"].hierarchy.instances[0]
        session.env.schedule_callback(
            5.0, lambda: session.faults.inject_backend_crash(
                pilot.agent, "flux", victim))
        session.run(tmgr.wait_tasks())
        assert all(t.state == TaskState.FAILED for t in tasks)
        assert all(t.attempts == 2 for t in tasks)
        assert all("retries exhausted" in str(t.exception) for t in tasks)

    def test_payload_failures_do_not_consume_infra_budget(self):
        # A deterministic payload failure with no task-level retries
        # fails on attempt 1 even though the policy allows 4: the infra
        # budget is reserved for infrastructure faults.
        spec = FaultSpec(retry=FAST_RETRY)
        session, tmgr, _pilot = make_session(
            (PartitionSpec("flux", n_instances=1),), faults=spec)
        task = tmgr.submit_tasks(TaskDescription(duration=1.0, fail=True))
        session.run(tmgr.wait_tasks())
        assert task.state == TaskState.FAILED
        assert task.attempts == 1


class TestCancelDuringRetry:
    def test_cancel_while_backoff_pending_stays_canceled(self):
        # Long backoff: the retry callback fires well after the cancel
        # and must notice the task is already final.
        spec = FaultSpec(retry=RetryPolicy(backoff_base=50.0, jitter=0.0))
        session, tmgr, pilot = make_session(
            (PartitionSpec("flux", n_instances=2),), faults=spec)
        tasks = tmgr.submit_tasks([TaskDescription(duration=30.0)
                                   for _ in range(8)])
        victim = pilot.agent.executors["flux"].hierarchy.instances[0]
        session.env.schedule_callback(
            5.0, lambda: session.faults.inject_backend_crash(
                pilot.agent, "flux", victim))
        # Give the crash time to fail attempts into their backoff wait,
        # then cancel everything before any retry fires.
        session.run(until=session.now + 10.0)
        waiting = [t for t in tasks if t.state == TaskState.AGENT_SCHEDULING]
        assert waiting, "some tasks should be parked in retry backoff"
        tmgr.cancel_tasks(tasks)
        session.run(tmgr.wait_tasks())
        final = {t.state for t in tasks}
        assert final <= {TaskState.CANCELED, TaskState.DONE,
                         TaskState.FAILED}
        for t in waiting:
            assert t.state == TaskState.CANCELED
        # The pending retry callbacks fire harmlessly after the fact.
        session.run(until=session.now + 120.0)
        for t in waiting:
            assert t.state == TaskState.CANCELED


class TestBlacklistFailover:
    def test_striking_backend_is_blacklisted_and_tasks_fail_over(self):
        spec = FaultSpec(retry=RetryPolicy(blacklist_after=3,
                                           backoff_base=0.2, jitter=0.0,
                                           backend_restart=False))
        session, tmgr, pilot = make_session(
            (PartitionSpec("srun", nodes=4),
             PartitionSpec("flux", nodes=4, n_instances=1)),
            faults=spec)
        tasks = tmgr.submit_tasks([TaskDescription(duration=20.0)
                                   for _ in range(24)])
        victim = pilot.agent.executors["flux"].hierarchy.instances[0]
        session.env.schedule_callback(
            5.0, lambda: session.faults.inject_backend_crash(
                pilot.agent, "flux", victim))
        session.run(tmgr.wait_tasks())
        assert all(t.succeeded for t in tasks)
        flux = pilot.agent.executors["flux"]
        assert flux.routable is False
        assert session.faults.injected["blacklist"] == 1
        # Every task that lost an attempt to the crash finished on srun.
        rerouted = [t for t in tasks if t.attempts > 1]
        assert rerouted
        assert all(t.backend == "srun" for t in rerouted)

    def test_last_backend_is_never_blacklisted(self):
        spec = FaultSpec(retry=RetryPolicy(blacklist_after=1,
                                           backoff_base=0.2, jitter=0.0))
        session, tmgr, pilot = make_session(
            (PartitionSpec("flux", n_instances=2),), faults=spec)
        tasks = tmgr.submit_tasks([TaskDescription(duration=20.0)
                                   for _ in range(8)])
        victim = pilot.agent.executors["flux"].hierarchy.instances[0]
        session.env.schedule_callback(
            5.0, lambda: session.faults.inject_backend_crash(
                pilot.agent, "flux", victim))
        session.run(tmgr.wait_tasks())
        # Strikes accrued, but the sole backend kept routing.
        assert pilot.agent.executors["flux"].routable is True
        assert session.faults.injected["blacklist"] == 0
        assert all(t.succeeded for t in tasks)


class TestPilotFailurePropagation:
    def test_bootstrap_failure_fails_pilot_with_faults_enabled(
            self, small_cluster):
        from repro.core.agent.executor_dragon import DragonExecutor

        session = Session(cluster=small_cluster, seed=3,
                          faults=FaultSpec(mtbf=100.0))
        pmgr = session.pilot_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("dragon"),)))
        original = DragonExecutor.__init__

        def hanging_init(self, agent, allocation, n_instances=1,
                         fail_startup=False):
            original(self, agent, allocation, n_instances=n_instances,
                     fail_startup=True)

        DragonExecutor.__init__ = hanging_init
        try:
            session.run(pilot.completion_event())
        finally:
            DragonExecutor.__init__ = original
        assert pilot.state == "FAILED"
        # The fault model never armed (the agent never came up), so no
        # injections happened and the clocks are not ticking.
        assert session.faults.schedule_log == []


class TestDragonRecovery:
    def test_node_failure_shrinks_pool_and_tasks_recover(self):
        spec = FaultSpec(retry=FAST_RETRY)
        session, tmgr, pilot = make_session(
            (PartitionSpec("dragon"),), nodes=4, faults=spec)
        tasks = tmgr.submit_tasks([
            TaskDescription(mode="function", duration=15.0)
            for _ in range(48)])
        node = session.cluster.nodes[0]
        rt = pilot.agent.executors["dragon"].runtimes[0]
        cap0 = rt.pool.capacity

        def crash():
            session.faults.inject_node_failure(pilot.agent, node)
            assert rt.pool.capacity == cap0 - node.n_cores

        session.env.schedule_callback(5.0, crash)
        session.env.schedule_callback(
            20.0, lambda: session.faults.repair_node(pilot.agent, node))
        session.run(tmgr.wait_tasks())
        assert rt.pool.capacity == cap0
        assert all(t.succeeded for t in tasks)
        assert session.faults.injected["node_crash"] == 1


class TestFluxPartitionLoss:
    def test_64_partition_run_survives_partition_loss(self):
        """Acceptance gate: a 64-partition Flux run that loses one
        partition mid-run still completes every task via restart and
        failover routing."""
        spec = FaultSpec(retry=FAST_RETRY)
        session, tmgr, pilot = make_session(
            (PartitionSpec("flux", n_instances=64),), nodes=64,
            cluster=generic(64, 4, 0), faults=spec)
        executor = pilot.agent.executors["flux"]
        assert executor.n_instances == 64
        tasks = tmgr.submit_tasks([TaskDescription(duration=20.0)
                                   for _ in range(512)])
        victim = executor.hierarchy.instances[7]
        session.env.schedule_callback(
            8.0, lambda: session.faults.inject_backend_crash(
                pilot.agent, "flux", victim))
        session.run(tmgr.wait_tasks())
        assert all(t.succeeded for t in tasks)
        assert session.faults.injected["backend_crash"] == 1
        # The lost partition's tasks were re-run elsewhere or after the
        # instance restarted.
        assert [t for t in tasks if t.attempts > 1]
        assert session.faults.n_unrecovered == 0


class TestSrunCeilingLeak:
    def test_killed_queued_steps_release_ceiling_slots(self):
        """Regression: steps killed while waiting for the srun
        concurrency ceiling must cancel their queued request — leaked
        grants used to drain the ceiling until no launch could ever
        start again."""
        spec = FaultSpec(retry=RetryPolicy(max_attempts=5, backoff_base=0.2,
                                           jitter=0.0))
        session, tmgr, pilot = make_session(
            (PartitionSpec("srun"),), nodes=4,
            cluster=generic(4, 64, 0), faults=spec)
        # 256 slots but a 112-wide ceiling: plenty of steps queued.
        tasks = tmgr.submit_tasks([TaskDescription(duration=30.0)
                                   for _ in range(256)])
        for when, index in ((5.0, 0), (6.0, 1)):
            session.env.schedule_callback(
                when, lambda i=index: session.faults.inject_node_failure(
                    pilot.agent, session.cluster.nodes[i]))
        session.env.schedule_callback(
            25.0, lambda: session.faults.repair_node(
                pilot.agent, session.cluster.nodes[0]))
        session.env.schedule_callback(
            26.0, lambda: session.faults.repair_node(
                pilot.agent, session.cluster.nodes[1]))
        session.run(tmgr.wait_tasks())
        assert all(t.succeeded for t in tasks)
        assert session.srun._ceiling.count == 0
        assert session.srun._ceiling.queued == 0
