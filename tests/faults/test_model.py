"""FaultModel behavior: scripted injection, schedules, accounting."""

import pytest

from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
    TaskState,
)
from repro.faults import FaultSpec, RetryPolicy
from repro.platform import generic
from repro.platform.node import NodeHealth
from repro.workloads.synthetic import dummy_workload


def run_srun_session(spec, n_tasks=32, duration=10.0, seed=5, nodes=4,
                     crash_at=None, repair_at=None, node_index=0):
    """One srun pilot under ``spec``; optionally script a node crash."""
    session = Session(cluster=generic(nodes, 8, 0), seed=seed, faults=spec)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=nodes, partitions=(PartitionSpec("srun"),)))
    tmgr.add_pilot(pilot)
    tasks = tmgr.submit_tasks(dummy_workload(n_tasks, duration=duration))
    node = session.cluster.nodes[node_index]
    if crash_at is not None:
        session.env.schedule_callback(
            crash_at, lambda: session.faults.inject_node_failure(
                pilot.agent, node))
    if repair_at is not None:
        session.env.schedule_callback(
            repair_at, lambda: session.faults.repair_node(pilot.agent, node))
    session.run(tmgr.wait_tasks())
    return session, tasks, node


class TestScriptedNodeFailure:
    def test_crash_kills_and_recovery_completes_tasks(self):
        session, tasks, node = run_srun_session(
            FaultSpec(), n_tasks=32, duration=10.0,
            crash_at=6.0, repair_at=20.0)
        assert all(t.succeeded for t in tasks)
        model = session.faults
        assert model.injected["node_crash"] == 1
        assert model.injected["node_repair"] == 1
        # Something was executing on the node when it died.
        assert model.wasted_core_seconds > 0.0
        assert model.recovery_latencies
        assert model.n_unrecovered == 0
        assert node.health is NodeHealth.UP

    def test_downtime_is_accounted(self):
        session, _tasks, _node = run_srun_session(
            FaultSpec(), crash_at=6.0, repair_at=16.0)
        # One node down for 10 s (repaired while the workload was
        # still draining, so the repair is inside the simulated span).
        assert session.faults.lost_node_seconds == pytest.approx(10.0)

    def test_unrepaired_node_fails_tasks_terminally(self):
        # 4 tasks each needing a full node, on a 1-node partition: after
        # the crash nothing fits, so retries exhaust and the task fails.
        spec = FaultSpec(retry=RetryPolicy(max_attempts=2, backoff_base=0.1,
                                           jitter=0.0))
        session = Session(cluster=generic(1, 8, 0), seed=5, faults=spec)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=1, partitions=(PartitionSpec("srun"),)))
        tmgr.add_pilot(pilot)
        tasks = tmgr.submit_tasks(dummy_workload(4, duration=30.0, cores=8))
        session.env.schedule_callback(
            10.0, lambda: session.faults.inject_node_failure(
                pilot.agent, session.cluster.nodes[0]))
        session.run(tmgr.wait_tasks())
        failed = [t for t in tasks if t.state == TaskState.FAILED]
        assert failed
        assert "retries exhausted" in str(failed[0].exception)
        assert session.faults.n_unrecovered > 0

    def test_injection_is_traced(self):
        session, _tasks, node = run_srun_session(
            FaultSpec(), crash_at=6.0, repair_at=20.0)
        names = [r.name for r in session.profiler
                 if r.entity == node.name]
        assert "fault_injected" in names
        assert "node_failed" in names
        assert "node_recovered" in names


class TestRandomSchedules:
    SPEC = FaultSpec(mtbf=30.0, mttr=10.0, p_launch_fail=0.05,
                     retry=RetryPolicy(backoff_base=0.2, jitter=0.0))

    def test_same_seed_same_schedule(self):
        a, _t, _n = run_srun_session(self.SPEC, seed=9)
        b, _t, _n = run_srun_session(self.SPEC, seed=9)
        assert a.faults.schedule_log == b.faults.schedule_log
        assert a.faults.schedule_log  # something was actually injected
        assert a.faults.injected == b.faults.injected

    def test_different_seed_different_schedule(self):
        a, _t, _n = run_srun_session(self.SPEC, seed=9)
        b, _t, _n = run_srun_session(self.SPEC, seed=10)
        assert a.faults.schedule_log != b.faults.schedule_log

    def test_weibull_schedule_is_deterministic_too(self):
        spec = FaultSpec(mtbf=30.0, dist="weibull", weibull_shape=0.9,
                         mttr=10.0)
        a, _t, _n = run_srun_session(spec, seed=3)
        b, _t, _n = run_srun_session(spec, seed=3)
        assert a.faults.schedule_log == b.faults.schedule_log

    def test_max_node_failures_caps_injection(self):
        spec = FaultSpec(mtbf=5.0, mttr=2.0, max_node_failures=2)
        session, _t, _n = run_srun_session(spec, duration=20.0, seed=9)
        assert session.faults.injected["node_crash"] <= 2


class TestLaunchFaults:
    def test_launch_outcome_disabled_draws_nothing(self):
        session = Session(cluster=generic(2, 8, 0), seed=1,
                          faults=FaultSpec())
        assert session.faults.launch_outcome("srun") is None
        # No draw happened: the stream was never created.
        assert "faults.launch" not in session.rng._streams

    def test_launch_fail_and_timeout_split(self):
        session = Session(cluster=generic(2, 8, 0), seed=1,
                          faults=FaultSpec(p_launch_fail=0.5,
                                           p_launch_timeout=0.5,
                                           launch_timeout=7.0))
        kinds = {session.faults.launch_outcome("x").kind
                 for _ in range(64)}
        assert kinds == {"launch_fail", "launch_timeout"}
        timeouts = [f for f in (session.faults.launch_outcome("x")
                                for _ in range(32))
                    if f.kind == "launch_timeout"]
        assert all(f.delay == 7.0 for f in timeouts)

    def test_launch_failures_are_retried_transparently(self):
        spec = FaultSpec(p_launch_fail=0.2,
                         retry=RetryPolicy(backoff_base=0.1, jitter=0.0))
        session, tasks, _n = run_srun_session(spec, n_tasks=48,
                                              duration=2.0, seed=11)
        assert all(t.succeeded for t in tasks)
        assert session.faults.injected["launch_fail"] > 0
        assert session.faults.n_retries >= session.faults.injected[
            "launch_fail"]


class TestBackendCrash:
    def _flux_session(self, spec, n_instances=2, nodes=8):
        session = Session(cluster=generic(nodes, 8, 0), seed=13, faults=spec)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=nodes,
            partitions=(PartitionSpec("flux", n_instances=n_instances),)))
        tmgr.add_pilot(pilot)
        session.run(pilot.active_event())
        return session, tmgr, pilot

    def test_flux_crash_restarts_and_tasks_recover(self):
        spec = FaultSpec(retry=RetryPolicy(backoff_base=0.2, jitter=0.0))
        session, tmgr, pilot = self._flux_session(spec)
        tasks = tmgr.submit_tasks([TaskDescription(duration=30.0)
                                   for _ in range(32)])
        executor = pilot.agent.executors["flux"]
        victim = executor.hierarchy.instances[0]
        session.env.schedule_callback(
            10.0, lambda: session.faults.inject_backend_crash(
                pilot.agent, "flux", victim))
        session.run(tmgr.wait_tasks())
        assert all(t.succeeded for t in tasks)
        assert session.faults.injected["backend_crash"] == 1
        assert session.faults.injected["backend_restart"] == 1
        assert victim.is_ready

    def test_flux_crash_without_restart_fails_over(self):
        spec = FaultSpec(retry=RetryPolicy(backend_restart=False,
                                           backoff_base=0.2, jitter=0.0))
        session, tmgr, pilot = self._flux_session(spec)
        tasks = tmgr.submit_tasks([TaskDescription(duration=30.0)
                                   for _ in range(16)])
        executor = pilot.agent.executors["flux"]
        victim = executor.hierarchy.instances[0]
        session.env.schedule_callback(
            10.0, lambda: session.faults.inject_backend_crash(
                pilot.agent, "flux", victim))
        session.run(tmgr.wait_tasks())
        assert all(t.succeeded for t in tasks)
        assert session.faults.injected["backend_restart"] == 0
        assert not victim.is_ready
