"""Determinism gates for the fault layer.

Two contracts, both acceptance criteria for the fault subsystem:

1. With faults *disabled* the instrumented code paths are inert — a
   same-seed run produces a profiler trace byte-identical to a build
   without the fault layer.  The checksums below were captured from
   the commit immediately preceding the fault subsystem, so any drift
   means the healthy hot path changed behavior.
2. With faults *enabled*, the injected schedule and the full trace are
   pure functions of the seed: two same-seed runs are byte-identical.
"""

import hashlib

from repro.analytics import save_profile
from repro.experiments.configs import ExperimentConfig
from repro.experiments.harness import run_experiment
from repro.faults import FaultSpec, RetryPolicy


#: sha256 of the profiler trace of each pinned config at seed 42,
#: captured pre-fault-layer.  (config kwargs, expected digest)
PINNED = [
    (dict(exp_id="base", launcher="flux", workload="dummy", n_nodes=2,
          n_partitions=1, duration=5.0, waves=1, seed=42),
     "e36e5bb44ca0ffd2a177b71c210f23a118be5478f92fe1b20b86768f64d89b48"),
    (dict(exp_id="base", launcher="flux", workload="null", n_nodes=4,
          n_partitions=2, duration=0.0, waves=1, seed=42),
     "5e167318e3864c2c4ea1164f9c5329674fbada33353cf8d2b082f8caf90d14e6"),
    (dict(exp_id="base", launcher="srun", workload="dummy", n_nodes=2,
          n_partitions=1, duration=3.0, waves=1, seed=42),
     "1856c85d284eb530ead2862be55f1c1216535be26522b796e502784b9406d4b2"),
    (dict(exp_id="base", launcher="dragon", workload="null", n_nodes=2,
          n_partitions=1, duration=0.0, waves=1, seed=42),
     "f68641dc797f7c8af3919a3b82ce8d6e4124ccc911f6244e1181571689f59a48"),
]


def _digest(cfg, tmp_path, tag):
    result = run_experiment(cfg, keep_session=True)
    path = tmp_path / f"{tag}.jsonl"
    save_profile(result.session.profiler, path)
    return hashlib.sha256(path.read_bytes()).hexdigest()


class TestDisabledFaultsAreInert:
    def test_traces_match_pre_fault_layer_baseline(self, tmp_path):
        for i, (kwargs, expected) in enumerate(PINNED):
            cfg = ExperimentConfig(**kwargs)
            assert cfg.faults is None
            got = _digest(cfg, tmp_path, f"pin{i}")
            assert got == expected, (
                f"{kwargs['launcher']}/{kwargs['workload']}: trace drifted "
                f"from the pre-fault-layer baseline ({got})")

    def test_zero_rate_spec_is_also_inert(self, tmp_path):
        """A FaultSpec with all-zero rates activates only the retry
        policy; on a failure-free workload the trace must still match
        the baseline bit for bit (no stray RNG draws, no extra
        events)."""
        for i, (kwargs, expected) in enumerate(PINNED[:2]):
            cfg = ExperimentConfig(faults=FaultSpec(), **kwargs)
            assert not cfg.faults.enabled
            got = _digest(cfg, tmp_path, f"zero{i}")
            assert got == expected


class TestEnabledFaultsAreDeterministic:
    CFG = dict(exp_id="base", launcher="flux", workload="dummy", n_nodes=4,
               n_partitions=2, duration=10.0, waves=1, seed=42,
               faults=FaultSpec(mtbf=60.0, mttr=15.0, p_launch_fail=0.05,
                                backend_mtbf=300.0,
                                retry=RetryPolicy(backoff_base=0.2,
                                                  jitter=0.1)))

    def test_same_seed_same_schedule_and_trace(self, tmp_path):
        a = run_experiment(ExperimentConfig(**self.CFG), keep_session=True)
        b = run_experiment(ExperimentConfig(**self.CFG), keep_session=True)
        assert a.session.faults.schedule_log, "spec should inject something"
        assert a.session.faults.schedule_log == b.session.faults.schedule_log
        assert a.session.faults.injected == b.session.faults.injected
        pa, pb = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        save_profile(a.session.profiler, pa)
        save_profile(b.session.profiler, pb)
        assert pa.read_bytes() == pb.read_bytes()
        assert a.faults is not None
        assert b.faults is not None
        assert a.faults.injected == b.faults.injected

    def test_different_seed_different_schedule(self):
        a = run_experiment(ExperimentConfig(**self.CFG), keep_session=True)
        cfg_b = dict(self.CFG, seed=43)
        b = run_experiment(ExperimentConfig(**cfg_b), keep_session=True)
        assert a.session.faults.schedule_log != b.session.faults.schedule_log


class TestScalePathsAreInert:
    """The full-machine scale machinery (bulk submission, lean
    retention, spilling profiler) must not move a single event: every
    pinned pre-fault-layer digest must also come out of a run with all
    three enabled."""

    def test_bulk_lean_spill_match_pinned_baselines(self, tmp_path):
        for i, (kwargs, expected) in enumerate(PINNED):
            cfg = ExperimentConfig(bulk=True, lean=True, **kwargs)
            result = run_experiment(cfg, keep_session=True,
                                    spill_dir=tmp_path / f"chunks{i}")
            path = tmp_path / f"scale{i}.jsonl"
            save_profile(result.session.profiler, path)
            got = hashlib.sha256(path.read_bytes()).hexdigest()
            assert got == expected, (
                f"{kwargs['launcher']}/{kwargs['workload']}: bulk/lean/"
                f"spill trace drifted from the pinned baseline ({got})")
