"""FaultSpec / RetryPolicy parsing, validation and backoff behavior."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import FaultSpec, RetryPolicy
from repro.sim import RngStreams


class TestParse:
    def test_defaults_inject_nothing(self):
        spec = FaultSpec()
        assert not spec.enabled
        assert spec.retry.max_attempts == 4

    def test_parse_spec_and_retry_keys(self):
        spec = FaultSpec.parse(
            "mtbf=1800,p_launch_fail=0.01,max_attempts=6,backoff_base=0.5")
        assert spec.mtbf == 1800.0
        assert spec.p_launch_fail == 0.01
        assert spec.retry.max_attempts == 6
        assert spec.retry.backoff_base == 0.5
        assert spec.enabled

    def test_parse_int_str_bool_coercion(self):
        spec = FaultSpec.parse(
            "dist=weibull,max_node_failures=3,backend_restart=no")
        assert spec.dist == "weibull"
        assert spec.max_node_failures == 3
        assert spec.retry.backend_restart is False

    def test_parse_unknown_key(self):
        with pytest.raises(ConfigurationError, match="unknown fault option"):
            FaultSpec.parse("mtbf=100,bogus=1")

    def test_parse_malformed_chunk(self):
        with pytest.raises(ConfigurationError, match="key=value"):
            FaultSpec.parse("mtbf")

    def test_parse_bad_number(self):
        with pytest.raises(ConfigurationError, match="expects a number"):
            FaultSpec.parse("mtbf=soon")

    def test_parse_layers_over_base(self):
        base = FaultSpec(mtbf=1800.0, p_launch_fail=0.02,
                         retry=RetryPolicy(max_attempts=7))
        spec = FaultSpec.parse("mtbf=600,backoff_max=10", base=base)
        # Named keys override; unnamed keys keep the base values.
        assert spec.mtbf == 600.0
        assert spec.p_launch_fail == 0.02
        assert spec.retry.max_attempts == 7
        assert spec.retry.backoff_max == 10.0

    def test_empty_chunks_are_skipped(self):
        spec = FaultSpec.parse("mtbf=100,,")
        assert spec.mtbf == 100.0


class TestValidation:
    def test_negative_mtbf(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(mtbf=-1.0)

    def test_unknown_dist(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(dist="pareto")

    def test_probabilities_bounded(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(p_launch_fail=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(p_launch_fail=0.7, p_launch_timeout=0.7)

    def test_retry_bounds(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.0)


class TestRetryPolicy:
    def test_allows_honors_attempts_and_deadline(self):
        policy = RetryPolicy(max_attempts=3, deadline=100.0)
        assert policy.allows(1)
        assert policy.allows(2, now=99.0)
        assert not policy.allows(3)
        assert not policy.allows(1, now=100.0)

    def test_delay_is_exponential_and_capped(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=2.0,
                             backoff_max=5.0, jitter=0.0)
        rng = RngStreams(0)
        assert policy.delay(1, rng) == 1.0
        assert policy.delay(2, rng) == 2.0
        assert policy.delay(3, rng) == 4.0
        assert policy.delay(4, rng) == 5.0   # capped
        assert policy.delay(9, rng) == 5.0

    def test_delay_jitter_is_seeded(self):
        policy = RetryPolicy(jitter=0.25)
        a = [policy.delay(k, RngStreams(7)) for k in range(1, 5)]
        b = [policy.delay(k, RngStreams(7)) for k in range(1, 5)]
        assert a == b
        for k, d in enumerate(a, start=1):
            base = min(1.0 * 2.0 ** (k - 1), 60.0)
            assert 0.75 * base <= d <= 1.25 * base
            assert not math.isclose(d, base)  # jitter actually applied
