"""Exporter tests: Perfetto trace format, Prometheus text, JSON."""

import json

import pytest

from repro.observability import (
    MetricsRegistry,
    Span,
    chrome_trace,
    metrics_json,
    prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)


def _tree():
    root = Span("session.0", "session", 0.0, 20.0)
    pilot = root.child("pilot.0", "pilot", 0.0, 20.0)
    group = pilot.child("flux", "backend_group", 0.0, 20.0)
    group.child("agent.flux.000", "backend", 0.0, 18.0, kind="flux")
    task = group.child("task.0", "task", 1.0, 9.0, backend="flux")
    task.child("schedule", "phase", 1.0, 2.0)
    task.child("launch", "phase", 2.0, 4.0)
    task.child("exec", "phase", 4.0, 8.0)
    task.child("collect", "phase", 8.0, 9.0)
    return root


class TestChromeTrace:
    def test_document_validates(self):
        doc = chrome_trace(_tree())
        assert validate_chrome_trace(doc) == []
        assert doc["traceEvents"]

    def test_microsecond_scaling(self):
        doc = chrome_trace(_tree())
        task = next(e for e in doc["traceEvents"]
                    if e.get("name") == "task.0")
        assert task["ts"] == pytest.approx(1.0e6)
        assert task["dur"] == pytest.approx(8.0e6)

    def test_backend_groups_become_processes(self):
        doc = chrome_trace(_tree())
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names == {"runtime", "flux"}

    def test_task_and_phases_share_one_lane(self):
        doc = chrome_trace(_tree())
        lanes = {(e["pid"], e["tid"]) for e in doc["traceEvents"]
                 if e["ph"] == "X"
                 and e["name"] in ("task.0", "schedule", "launch",
                                   "exec", "collect")}
        assert len(lanes) == 1

    def test_write_round_trip(self, tmp_path):
        path = write_chrome_trace(_tree(), tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []

    def test_validator_flags_bad_events(self):
        assert validate_chrome_trace({}) == \
            ["traceEvents missing or not a list"]
        doc = {"traceEvents": [
            {"ph": "Z"},
            {"ph": "X", "name": "", "pid": 0, "tid": 0, "ts": -1},
            "nope",
        ]}
        problems = validate_chrome_trace(doc)
        assert len(problems) >= 3


class TestMetricsExport:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "xs seen",
                    labels=("backend",)).labels("flux").inc(3)
        reg.gauge("repro_depth", "queue depth").set(4)
        h = reg.histogram("repro_lat", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        return reg

    def test_prometheus_text(self):
        text = prometheus_text(self._registry())
        assert '# TYPE repro_x_total counter' in text
        assert 'repro_x_total{backend="flux"} 3' in text
        assert 'repro_depth 4' in text
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 2' in text
        assert 'repro_lat_count 2' in text

    def test_json_snapshot(self):
        snap = metrics_json(self._registry())
        assert snap["repro_x_total"]["series"][0]["value"] == 3

    def test_write_metrics_formats(self, tmp_path):
        reg = self._registry()
        jpath = write_metrics(reg, tmp_path / "m.json")
        assert json.loads(jpath.read_text())["repro_depth"]
        ppath = write_metrics(reg, tmp_path / "m.prom", fmt="prom")
        assert "# TYPE" in ppath.read_text()
        with pytest.raises(ValueError, match="unknown metrics format"):
            write_metrics(reg, tmp_path / "m.x", fmt="xml")
