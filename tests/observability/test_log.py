"""Structured sim-time logging tests."""

import io

import pytest

from repro.observability import LogSink, SimLogger
from repro.sim import Environment


class TestLogSink:
    def test_off_by_default(self):
        env = Environment()
        sink = LogSink(env)
        log = SimLogger(sink, "agent.0")
        log.info("hello")
        assert sink.records == []

    def test_records_are_sim_stamped(self):
        env = Environment()
        sink = LogSink(env)
        sink.enable()
        log = SimLogger(sink, "agent.0")
        env._now = 12.5
        log.info("ready", backend="flux")
        (rec,) = sink.records
        assert rec.time == 12.5
        assert rec.component == "agent.0"
        assert rec.fields == {"backend": "flux"}

    def test_threshold_filters(self):
        env = Environment()
        sink = LogSink(env)
        sink.enable(level="warning")
        log = SimLogger(sink, "c")
        log.info("dropped")
        log.warning("kept")
        log.error("kept too")
        assert [r.level for r in sink.records] == ["warning", "error"]

    def test_bad_level_raises(self):
        sink = LogSink(Environment())
        with pytest.raises(ValueError, match="unknown log level"):
            sink.enable(level="loud")

    def test_stream_mirror_formats(self):
        env = Environment()
        env._now = 1.25
        sink = LogSink(env)
        out = io.StringIO()
        sink.enable(stream=out)
        SimLogger(sink, "agent.0").info("go", n=3)
        line = out.getvalue()
        assert "INFO" in line
        assert "agent.0: go n=3" in line

    def test_records_for_component(self):
        env = Environment()
        sink = LogSink(env)
        sink.enable()
        SimLogger(sink, "a").info("x")
        SimLogger(sink, "b").info("y")
        assert [r.msg for r in sink.records_for("b")] == ["y"]


class TestSessionIntegration:
    def test_agent_logs_when_enabled(self):
        from repro.core import (
            PartitionSpec, PilotDescription, Session, TaskDescription)
        from repro.platform import generic

        session = Session(cluster=generic(2, 4), seed=0, observe=True)
        session.obs.enable_logging(level="debug")
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=2, partitions=(PartitionSpec("flux"),)))
        tmgr.add_pilot(pilot)
        tmgr.submit_tasks([TaskDescription(duration=0.5)])
        session.run(tmgr.wait_tasks())
        msgs = [r.msg for r in session.obs.sink.records]
        assert "agent ready" in msgs
