"""Live telemetry bus: schema stability, determinism, ETA, host time.

Pins the ISSUE's acceptance gates:

* every execution shape (plain, ``--shards``, ``--parallel``,
  ``--ensemble``) emits schema-valid JSONL records through the same
  :func:`~repro.observability.telemetry.validate_telemetry` contract;
* same-seed profiles are byte-identical with progress streaming on or
  off, for srun, flux_n (sharded and unsharded), dragon and ensemble
  runs — telemetry observes the simulation, it never perturbs it;
* bundles carry the telemetry stream, and sharded / ensemble bundles
  are complete (spans from the workers, per-seed profiles indexed).

Tiny runs may legitimately finish inside one poll interval, so tests
assert *at least* the final flushed record and validate everything
that was emitted.
"""

import json

import pytest

from repro.analytics import save_profile
from repro.ensemble import run_ensemble
from repro.experiments.__main__ import main
from repro.experiments.configs import ExperimentConfig
from repro.experiments.harness import run_experiment, run_repetitions
from repro.observability import read_manifest, read_telemetry
from repro.observability.telemetry import (
    DEFAULT_INTERVAL,
    TELEMETRY_SCHEMA,
    EtaEstimator,
    HostProfiler,
    SweepTelemetry,
    TelemetryBus,
    render_progress_line,
    validate_telemetry,
)

SRUN = ExperimentConfig(exp_id="srun", launcher="srun", workload="null",
                        n_nodes=2, duration=5.0, waves=1)
FLUX = ExperimentConfig(exp_id="flux_n", launcher="flux", workload="null",
                        n_nodes=4, n_partitions=2, duration=5.0, waves=1)
SHARDED = ExperimentConfig(exp_id="flux_n", launcher="flux",
                           workload="null", n_nodes=4, n_partitions=2,
                           duration=5.0, waves=1, shards=2)
DRAGON = ExperimentConfig(exp_id="dragon", launcher="dragon",
                          workload="null", n_nodes=2, duration=5.0,
                          waves=1)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


# ---------------------------------------------------------------------------
# Units
# ---------------------------------------------------------------------------


class TestEtaEstimator:
    def test_unknown_total_is_unknowable(self):
        assert EtaEstimator(None).estimate(10.0, 5) is None
        assert EtaEstimator(0).estimate(10.0, 5) is None

    def test_nothing_done_falls_back_to_prior(self):
        eta = EtaEstimator(100, prior_makespan=40.0)
        assert eta.estimate(0.0, 0) == 40.0
        assert eta.estimate(10.0, 0) == 30.0  # prior minus elapsed
        assert eta.estimate(90.0, 0) == 0.0   # clamped

    def test_nothing_done_no_prior_is_none(self):
        assert EtaEstimator(100).estimate(5.0, 0) is None

    def test_blend_weights_by_completed_fraction(self):
        eta = EtaEstimator(10, prior_makespan=100.0)
        # Half done after 50s: observed remaining = 50, prior
        # remaining = 50, any weighting gives 50.
        assert eta.estimate(50.0, 5) == pytest.approx(50.0)
        # 8/10 done after 40s: observed = 2 * 5 = 10, prior left = 60;
        # weight 0.8 -> 0.8*10 + 0.2*60 = 20.
        assert eta.estimate(40.0, 8) == pytest.approx(20.0)

    def test_pure_observation_without_prior(self):
        eta = EtaEstimator(10)
        assert eta.estimate(40.0, 8) == pytest.approx(10.0)

    def test_complete_is_zero(self):
        assert EtaEstimator(10, prior_makespan=99.0).estimate(1.0, 10) == 0.0


class TestHostProfiler:
    def test_phases_accumulate_and_reenter(self):
        clock = FakeClock()
        host = HostProfiler(clock=clock)
        host.start("run")
        clock.t = 2.0
        assert host.stop("run") == pytest.approx(2.0)
        with host.phase("run"):
            clock.t = 5.0
        assert host.phases["run"] == pytest.approx(5.0)

    def test_snapshot_includes_open_phase(self):
        clock = FakeClock()
        host = HostProfiler(clock=clock)
        host.start("setup")
        clock.t = 3.0
        snap = host.snapshot()
        assert snap["phases"]["setup"] == pytest.approx(3.0)
        assert snap["wall_seconds"] == pytest.approx(3.0)
        assert snap["rss_mb"] >= 0.0

    def test_stop_without_start_is_harmless(self):
        assert HostProfiler().stop("never") == 0.0


class TestTelemetryBus:
    def test_rejects_unknown_source(self):
        with pytest.raises(ValueError):
            TelemetryBus("nonsense")

    def test_poll_is_rate_limited_emit_is_not(self):
        clock = FakeClock()
        bus = TelemetryBus("plain", interval=1.0, clock=clock)
        sample = lambda: {"n": len(bus.records)}  # noqa: E731
        assert bus.poll(sample) is not None       # first poll always fires
        clock.t = 0.5
        assert bus.poll(sample) is None           # inside the interval
        assert bus.emit(sample()) is not None     # emit bypasses the limit
        clock.t = 2.0
        assert bus.poll(sample) is not None
        assert [r["seq"] for r in bus.records] == [0, 1, 2]

    def test_records_carry_schema_and_wall_time(self):
        clock = FakeClock(10.0)
        bus = TelemetryBus("plain", clock=clock)
        clock.t = 12.5
        record = bus.emit({"x": 1})
        assert record["schema"] == TELEMETRY_SCHEMA
        assert record["source"] == "plain"
        assert record["wall_time"] == pytest.approx(2.5)
        assert bus.elapsed() == pytest.approx(2.5)

    def test_subscribers_see_every_record(self):
        seen = []
        bus = TelemetryBus("plain", sink=seen.append)
        bus.subscribe(seen.append)
        bus.emit({})
        assert len(seen) == 2

    def test_default_interval_is_sane(self):
        assert 0.0 < DEFAULT_INTERVAL <= 1.0


class TestSweepTelemetry:
    def test_last_member_always_emits(self):
        clock = FakeClock()
        sweep = SweepTelemetry("ensemble", 3,
                               bus=TelemetryBus("ensemble", interval=1e9,
                                                clock=clock))
        sweep.member_done(10, 10, 0)   # first poll fires
        sweep.member_done(10, 9, 1)    # rate-limited away
        final = sweep.member_done(10, 10, 0)
        assert final is not None       # unconditional final flush
        assert final["members_done"] == 3
        assert final["tasks_done"] == 29
        assert final["tasks_failed"] == 1
        assert final["tasks_total"] == 30
        assert final["progress"] == 1.0
        assert final["eta_basis"] == "wall"
        assert validate_telemetry(final) == []

    def test_cohort_counts_superseded_by_members(self):
        clock = FakeClock()
        bus = TelemetryBus("ensemble", interval=0.0, clock=clock)
        sweep = SweepTelemetry("ensemble", 2, bus=bus)
        record = sweep.cohort(128, 512)
        assert record["tasks_done"] == 128 and record["tasks_total"] == 512
        assert record["members_done"] == 0
        sweep.member_done(256, 256, 0)
        final = sweep.member_done(256, 256, 0)
        assert final["tasks_done"] == 512 and final["tasks_total"] == 512


class TestValidateTelemetry:
    GOOD = {"schema": TELEMETRY_SCHEMA, "source": "ensemble", "seq": 0,
            "wall_time": 0.5, "tasks_done": 3, "tasks_total": 10,
            "tasks_failed": 0, "progress": 0.3, "eta_seconds": 1.0,
            "eta_basis": "wall", "rss_mb": 12.0, "members_done": 1,
            "members_total": 2}

    def test_good_record_passes(self):
        assert validate_telemetry(dict(self.GOOD)) == []

    def test_missing_field_detected(self):
        bad = dict(self.GOOD)
        del bad["tasks_done"]
        assert any("tasks_done" in p for p in validate_telemetry(bad))

    def test_wrong_schema_detected(self):
        bad = dict(self.GOOD, schema=999)
        assert validate_telemetry(bad)

    def test_unknown_source_detected(self):
        bad = dict(self.GOOD, source="carrier-pigeon")
        assert any("source" in p for p in validate_telemetry(bad))

    def test_progress_out_of_range_detected(self):
        bad = dict(self.GOOD, progress=1.5)
        assert any("progress" in p for p in validate_telemetry(bad))

    def test_plain_needs_backends(self):
        bad = dict(self.GOOD, source="plain", sim_time=1.0, nodes_down=0)
        assert any("backends" in p for p in validate_telemetry(bad))

    def test_render_line_handles_every_source(self):
        line = render_progress_line(dict(self.GOOD))
        assert "ensemble" in line and "1/2" in line


# ---------------------------------------------------------------------------
# Schema stability across execution shapes (through the CLI)
# ---------------------------------------------------------------------------


def _cli_records(capsys, argv):
    assert main(argv) == 0
    err = capsys.readouterr().err
    records = [json.loads(line) for line in err.splitlines()
               if line.strip().startswith("{")]
    assert records, f"no telemetry on stderr for {argv}"
    for record in records:
        assert validate_telemetry(record) == [], record
    return records


class TestSchemaAcrossShapes:
    def test_plain_run(self, capsys):
        records = _cli_records(capsys, [
            "run", "srun", "--nodes", "2", "--waves", "1",
            "--progress", "jsonl"])
        final = records[-1]
        assert final["source"] == "plain"
        assert final["tasks_done"] == final["tasks_total"] > 0
        assert "backends" in final and "srun" in final["backends"]
        assert final["host"]["phases"].keys() >= {"run", "workload"}

    def test_sharded_run(self, capsys):
        records = _cli_records(capsys, [
            "run", "flux_n", "--nodes", "4", "--partitions", "2",
            "--waves", "1", "--shards", "2", "--progress", "jsonl"])
        final = records[-1]
        assert final["source"] == "shard"
        assert final["tasks_done"] == final["tasks_total"] > 0
        shard_bearing = [r for r in records if r.get("shards")]
        assert shard_bearing, "no record carried per-shard deltas"
        for delta in shard_bearing[-1]["shards"]:
            assert {"shard", "active", "queued", "rss_mb"} <= set(delta)

    def test_parallel_repetitions(self, capsys):
        records = _cli_records(capsys, [
            "run", "srun", "--nodes", "2", "--waves", "1",
            "--reps", "2", "--parallel", "2", "--progress", "jsonl"])
        final = records[-1]
        assert final["source"] == "parallel"
        assert final["members_done"] == final["members_total"] == 2
        assert final["eta_basis"] == "wall"

    def test_ensemble_run(self, capsys):
        records = _cli_records(capsys, [
            "run", "srun", "--nodes", "2", "--waves", "1",
            "--ensemble", "--reps", "2", "--progress", "jsonl"])
        final = records[-1]
        assert final["source"] == "ensemble"
        assert final["members_done"] == final["members_total"] == 2

    def test_line_renderer(self, capsys):
        assert main(["run", "srun", "--nodes", "2", "--waves", "1",
                     "--progress"]) == 0
        err = capsys.readouterr().err
        assert "plain" in err and "100.0%" in err


# ---------------------------------------------------------------------------
# Determinism: progress streaming never perturbs the simulation
# ---------------------------------------------------------------------------


class TestDeterminism:
    def _profile_bytes(self, tmp_path, cfg, tag, **kwargs):
        result = run_experiment(cfg, keep_session=True, **kwargs)
        path = tmp_path / f"{tag}.jsonl"
        save_profile(result.session.profiler, path)
        return path.read_bytes()

    @pytest.mark.parametrize("cfg", [SRUN, FLUX, SHARDED, DRAGON],
                             ids=["srun", "flux_n", "flux_n_sharded",
                                  "dragon"])
    def test_progress_does_not_perturb_trace(self, tmp_path, cfg):
        plain = self._profile_bytes(tmp_path, cfg, "plain")
        streamed = self._profile_bytes(tmp_path, cfg, "streamed",
                                       progress=lambda record: None)
        assert plain == streamed

    def test_ensemble_profiles_identical_with_progress(self, tmp_path):
        a_dir, b_dir = tmp_path / "a", tmp_path / "b"
        run_ensemble(SRUN, n_reps=2, profile_dir=str(a_dir))
        run_ensemble(SRUN, n_reps=2, profile_dir=str(b_dir),
                     progress=lambda record: None)
        files = sorted(p.name for p in a_dir.iterdir())
        assert files == sorted(p.name for p in b_dir.iterdir())
        for name in files:
            assert (a_dir / name).read_bytes() == \
                (b_dir / name).read_bytes()

    def test_repetitions_aggregate_identical_with_progress(self):
        plain = run_repetitions(SRUN, n_reps=2)
        streamed = run_repetitions(SRUN, n_reps=2,
                                   progress=lambda record: None)
        assert plain.throughput_avg == streamed.throughput_avg
        assert plain.makespan_avg == streamed.makespan_avg


# ---------------------------------------------------------------------------
# Bundle completeness
# ---------------------------------------------------------------------------


class TestBundles:
    def test_sharded_bundle_is_complete(self, tmp_path):
        bundle = tmp_path / "bundle"
        run_experiment(SHARDED, bundle=bundle, progress=True)
        manifest = read_manifest(bundle)
        assert {"metrics", "spans", "trace", "profile", "telemetry"} <= \
            set(manifest["files"])
        records = read_telemetry(bundle / "telemetry.jsonl")
        assert records and all(validate_telemetry(r) == [] for r in records)
        # Worker-side instance bootstrap spans were forwarded and
        # grafted: the bundle's span tree names them.
        spans_doc = (bundle / "spans.json").read_text(encoding="utf-8")
        assert ".bootstrap" in spans_doc

    def test_ensemble_bundle_is_complete(self, tmp_path):
        bundle = tmp_path / "ens"
        result = run_ensemble(SRUN, n_reps=2, bundle=str(bundle),
                              progress=True)
        manifest = read_manifest(bundle)
        ens = manifest["ensemble"]
        assert ens["engine"] == result.engine
        assert ens["seeds"] == list(result.seeds)
        assert len(ens["members"]) == 2
        for row in ens["members"]:
            assert row["n_done"] == row["n_tasks"] > 0
        for seed in result.seeds:
            key = f"profile_seed{seed}"
            assert key in manifest["files"]
            assert (bundle / manifest["files"][key]).is_file()
        records = read_telemetry(bundle / "telemetry.jsonl")
        assert records and records[-1]["members_done"] == 2

    def test_trace_watch_renders_bundle(self, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        run_experiment(SRUN, bundle=bundle, progress=True)
        capsys.readouterr()
        assert main(["trace", "watch", str(bundle)]) == 0
        out = capsys.readouterr().out
        assert "telemetry records" in out

    def test_trace_watch_missing_telemetry_fails_cleanly(self, tmp_path,
                                                         capsys):
        assert main(["trace", "watch", str(tmp_path)]) == 1
        assert "no telemetry" in capsys.readouterr().err
