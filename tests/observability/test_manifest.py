"""Manifest and bundle tests: completeness, round-trip, harness path."""

import json

import pytest

from repro.experiments.configs import ExperimentConfig
from repro.experiments.harness import run_experiment
from repro.observability import (
    BUNDLE_VERSION,
    build_manifest,
    package_versions,
    read_manifest,
    validate_chrome_trace,
)

CFG = ExperimentConfig(exp_id="flux_1", launcher="flux", workload="dummy",
                       n_nodes=2, duration=5.0, waves=1)


class TestManifest:
    def test_versions_include_toolchain(self):
        versions = package_versions()
        assert "repro" in versions
        assert "python" in versions

    def test_build_minimal(self):
        manifest = build_manifest()
        assert manifest["bundle_version"] == BUNDLE_VERSION
        assert manifest["kind"] == "repro-run"
        assert "config" not in manifest

    def test_extra_fields_merge(self):
        manifest = build_manifest(extra={"note": "hello"})
        assert manifest["note"] == "hello"


class TestBundle:
    @pytest.fixture(scope="class")
    def bundle(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("bundles") / "run0"
        result = run_experiment(CFG, bundle=str(out))
        return out, result

    def test_all_artifacts_written(self, bundle):
        out, _result = bundle
        for name in ("manifest.json", "metrics.json", "spans.json",
                     "trace.json", "profile.jsonl"):
            assert (out / name).is_file(), name

    def test_manifest_is_complete(self, bundle):
        out, result = bundle
        manifest = read_manifest(out)
        assert manifest["bundle_version"] == BUNDLE_VERSION
        assert manifest["seed"] == CFG.seed
        assert manifest["config"]["exp_id"] == "flux_1"
        assert manifest["config"]["n_nodes"] == 2
        assert manifest["cluster"]["n_nodes"] == 2
        assert manifest["session_uid"].startswith("session.")
        assert manifest["result"]["n_tasks"] == result.n_tasks
        assert manifest["result"]["n_done"] == result.n_done
        assert manifest["result"]["makespan"] == \
            pytest.approx(result.makespan)
        assert set(manifest["files"]) == \
            {"metrics", "spans", "trace", "profile", "telemetry"}

    def test_trace_artifact_validates(self, bundle):
        out, _ = bundle
        doc = json.loads((out / "trace.json").read_text())
        assert validate_chrome_trace(doc) == []

    def test_profile_artifact_loads(self, bundle):
        out, result = bundle
        from repro.analytics import load_events

        events = load_events(out / "profile.jsonl")
        assert len(events) > result.n_tasks

    def test_spans_cover_all_tasks(self, bundle):
        out, result = bundle
        spans = json.loads((out / "spans.json").read_text())

        def count_tasks(node):
            n = 1 if node["cat"] == "task" else 0
            return n + sum(count_tasks(c) for c in node["children"])

        assert count_tasks(spans) == result.n_tasks
        # The harness's live "experiment" span rides along.
        cats = {c["cat"] for c in spans["children"]}
        assert "experiment" in cats

    def test_metrics_artifact_has_kernel_series(self, bundle):
        out, _ = bundle
        metrics = json.loads((out / "metrics.json").read_text())
        assert "repro_kernel_events_total" in metrics
        assert "repro_flux_jobs_total" in metrics

    def test_read_manifest_rejects_foreign_json(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"kind": "other"}')
        with pytest.raises(ValueError, match="not a repro run manifest"):
            read_manifest(tmp_path)
