"""End-to-end observability behaviour of instrumented runs.

Covers the ISSUE's acceptance gates: the srun saturation gauge hits
the 112 ceiling on the fig4 configuration, live metrics populate
across backends, and observability (on or off) never perturbs the
simulated event order — same-seed profiles are byte-identical.
"""

import pytest

from repro.analytics import save_profile
from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
)
from repro.experiments.configs import ExperimentConfig
from repro.experiments.harness import run_experiment
from repro.platform import generic
from repro.platform.spec import ResourceSpec


def _value(registry, name, **labels):
    fam = registry.get(name)
    assert fam is not None, f"metric {name} never registered"
    if labels:
        values = tuple(labels[n] for n in fam.label_names)
        return dict(fam.items())[tuple(str(v) for v in values)]
    return next(iter(dict(fam.items()).values()))


class TestDisabledByDefault:
    def test_registry_absent(self):
        session = Session(cluster=generic(2, 4), seed=0)
        assert session.obs.registry is None
        assert not session.obs.enabled
        assert session.env._instrument is None

    def test_disabled_components_hold_none(self):
        session = Session(cluster=generic(2, 4), seed=0)
        assert session.srun._m_active is None


class TestLiveMetrics:
    @pytest.fixture(scope="class")
    def observed(self):
        session = Session(cluster=generic(8, cores_per_node=8), seed=11,
                          observe=True)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(nodes=8, partitions=(
            PartitionSpec("srun", nodes=2),
            PartitionSpec("flux", nodes=3, n_instances=2),
            PartitionSpec("dragon", nodes=3))))
        tmgr.add_pilot(pilot)
        tds = []
        for i in range(30):
            backend = ("srun", "flux", "dragon")[i % 3]
            mode = "function" if backend == "dragon" else "executable"
            tds.append(TaskDescription(
                executable="/bin/x", duration=2.0, mode=mode,
                resources=ResourceSpec(cores=1), backend=backend))
        tasks = tmgr.submit_tasks(tds)
        session.run(tmgr.wait_tasks())
        return session, tasks

    def test_kernel_counters(self, observed):
        session, _ = observed
        reg = session.obs.registry
        events = _value(reg, "repro_kernel_events_total", kind="event")
        assert events.value > 0
        assert _value(reg, "repro_kernel_runs_total").value == 1
        assert _value(reg, "repro_kernel_sim_seconds_total").value == \
            pytest.approx(session.now)
        assert _value(reg, "repro_kernel_queue_depth").max > 0

    def test_agent_dispatch_counts_all_tasks(self, observed):
        session, tasks = observed
        reg = session.obs.registry
        fam = reg.get("repro_agent_dispatched_total")
        total = sum(c.value for _k, c in fam.items())
        assert total == len(tasks)

    def test_srun_metrics(self, observed):
        session, _ = observed
        reg = session.obs.registry
        assert _value(reg, "repro_srun_launches_total").value == 10
        active = _value(reg, "repro_srun_active")
        assert active.max >= 1
        assert active.value == 0  # everything drained

    def test_flux_metrics(self, observed):
        session, _ = observed
        reg = session.obs.registry
        fam = reg.get("repro_flux_jobs_total")
        done = sum(c.value for k, c in fam.items() if k[-1] == "completed")
        assert done == 10
        backlog = reg.get("repro_flux_backlog")
        assert all(g.value == 0 for _k, g in backlog.items())

    def test_dragon_metrics(self, observed):
        session, _ = observed
        reg = session.obs.registry
        fam = reg.get("repro_dragon_dispatch_total")
        total = sum(c.value for _k, c in fam.items())
        assert total == 10

    def test_scheduler_placements(self, observed):
        session, _ = observed
        reg = session.obs.registry
        fam = reg.get("repro_agent_sched_placements_total")
        # srun (10 tasks) and dragon placements flow through the agent
        # scheduler; flux schedules internally.
        total = sum(c.value for _k, c in fam.items())
        assert total >= 10


class TestSrunCeilingSaturation:
    def test_fig4_config_saturates_at_112(self):
        cfg = ExperimentConfig(exp_id="srun", launcher="srun",
                               workload="dummy", n_nodes=4,
                               duration=30.0, waves=1)
        result = run_experiment(cfg, keep_session=True, observe=True)
        reg = result.session.obs.registry
        active = _value(reg, "repro_srun_active")
        # 224 concurrent tasks contend for the machine-wide ceiling.
        assert active.max == 112
        waiting = _value(reg, "repro_srun_waiting")
        assert waiting.max > 0
        assert _value(reg, "repro_srun_launches_total").value == \
            result.n_tasks


class TestDeterminism:
    CFG = ExperimentConfig(exp_id="flux_1", launcher="flux",
                           workload="dummy", n_nodes=2,
                           duration=5.0, waves=1)

    def _profile_bytes(self, tmp_path, tag, **kwargs):
        result = run_experiment(self.CFG, keep_session=True, **kwargs)
        path = tmp_path / f"{tag}.jsonl"
        save_profile(result.session.profiler, path)
        return path.read_bytes()

    def test_observe_does_not_perturb_trace(self, tmp_path):
        plain = self._profile_bytes(tmp_path, "plain")
        observed = self._profile_bytes(tmp_path, "observed", observe=True)
        assert plain == observed

    def test_same_seed_same_trace(self, tmp_path):
        a = self._profile_bytes(tmp_path, "a", observe=True)
        b = self._profile_bytes(tmp_path, "b", observe=True)
        assert a == b
