"""Span-model tests: tracer, offline reconstruction, phase invariants."""

import pytest

from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
)
from repro.observability import (
    Span,
    Tracer,
    phase_rollup,
    spans_from_events,
    spans_from_profiler,
)
from repro.observability.spans import CAT_PHASE, CAT_TASK, PHASES
from repro.platform import generic
from repro.platform.spec import ResourceSpec
from repro.sim import Environment


class TestSpan:
    def test_tree_and_walk(self):
        root = Span("root", "session", 0.0, 10.0)
        a = root.child("a", "task", 1.0, 4.0)
        a.child("exec", "phase", 2.0, 3.0)
        root.child("b", "task", 5.0, 6.0)
        assert [s.name for s in root.walk()] == ["root", "a", "exec", "b"]
        assert [s.name for s in root.find("task")] == ["a", "b"]
        assert a.duration == 3.0

    def test_to_dict_round_shape(self):
        root = Span("root", "session", 0.0, 1.0, attrs={"seed": 3})
        root.child("c", "task", 0.1, 0.9)
        d = root.to_dict()
        assert d["attrs"] == {"seed": 3}
        assert d["children"][0]["name"] == "c"


class TestTracer:
    def test_context_manager_nesting(self):
        env = Environment()
        tracer = Tracer(env, enabled=True)
        with tracer.span("outer", cat="a"):
            env._now = 2.0
            with tracer.span("inner", cat="b"):
                env._now = 3.0
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert outer.start == 0.0 and outer.end == 3.0
        assert outer.children[0].name == "inner"
        assert outer.children[0].start == 2.0

    def test_begin_end_non_lifo(self):
        env = Environment()
        tracer = Tracer(env, enabled=True)
        s1 = tracer.begin("one")
        s2 = tracer.begin("two")
        env._now = 5.0
        tracer.end(s1)
        env._now = 7.0
        tracer.end(s2)
        assert s1.end == 5.0 and s2.end == 7.0

    def test_disabled_tracer_records_nothing(self):
        env = Environment()
        tracer = Tracer(env, enabled=False)
        with tracer.span("x"):
            pass
        tracer.end(tracer.begin("y"))
        assert tracer.roots == []


def _hybrid_session():
    """8 nodes split srun/flux, half the tasks pinned to each backend."""
    session = Session(cluster=generic(8, cores_per_node=8), seed=5,
                      observe=True)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(nodes=8, partitions=(
        PartitionSpec("srun", nodes=4), PartitionSpec("flux", nodes=4))))
    tmgr.add_pilot(pilot)
    tds = [TaskDescription(executable="/bin/x", duration=3.0,
                           resources=ResourceSpec(cores=1),
                           backend="srun" if i % 2 else "flux")
           for i in range(20)]
    tasks = tmgr.submit_tasks(tds)
    session.run(tmgr.wait_tasks())
    return session, tasks


class TestReconstruction:
    @pytest.fixture(scope="class")
    def hybrid(self):
        return _hybrid_session()

    def test_hierarchy_from_hybrid_run(self, hybrid):
        session, tasks = hybrid
        root = spans_from_profiler(session.profiler, session_uid=session.uid)
        assert root.cat == "session"
        pilots = root.find("pilot")
        assert len(pilots) == 1
        groups = {s.name for s in root.walk() if s.cat == "backend_group"}
        assert groups == {"srun", "flux"}
        backends = root.find("backend")
        assert {b.attrs["kind"] for b in backends} == {"srun", "flux"}
        task_spans = root.find(CAT_TASK)
        assert len(task_spans) == len(tasks)
        by_group = {}
        for t in task_spans:
            by_group.setdefault(t.parent.name, []).append(t)
        assert len(by_group["srun"]) == 10
        assert len(by_group["flux"]) == 10

    def test_phase_durations_sum_to_task_lifetime(self, hybrid):
        session, _tasks = hybrid
        root = spans_from_profiler(session.profiler, session_uid=session.uid)
        task_spans = root.find(CAT_TASK)
        assert task_spans
        for span in task_spans:
            phases = [c for c in span.children if c.cat == CAT_PHASE]
            assert phases, span
            total = sum(p.duration for p in phases)
            assert total == pytest.approx(span.duration, abs=1e-9)
            # Phases tile the lifetime contiguously and in order.
            assert phases[0].start == span.start
            assert phases[-1].end == span.end
            for prev, nxt in zip(phases, phases[1:]):
                assert prev.end == nxt.start
                assert PHASES.index(prev.name) < PHASES.index(nxt.name)

    def test_exec_phase_matches_payload_duration(self, hybrid):
        session, _tasks = hybrid
        root = spans_from_profiler(session.profiler, session_uid=session.uid)
        for span in root.find(CAT_TASK):
            execs = [c for c in span.children if c.name == "exec"]
            assert len(execs) == 1
            assert execs[0].duration == pytest.approx(3.0, abs=1e-6)

    def test_rollup_counts_every_task(self, hybrid):
        session, tasks = hybrid
        root = spans_from_profiler(session.profiler, session_uid=session.uid)
        rollup = phase_rollup(root)
        assert set(rollup) == set(PHASES)
        for phase in PHASES:
            assert rollup[phase]["count"] == len(tasks)
        assert rollup["exec"]["mean"] == pytest.approx(3.0, abs=1e-6)


class TestEdgeCases:
    def test_empty_stream(self):
        root = spans_from_events([], session_uid="s0")
        assert root.name == "s0"
        assert root.children == []

    def test_unfinalized_task_closes_at_last_event(self):
        from repro.analytics.events import TraceEvent

        events = [
            TraceEvent(1.0, "task.0", "task_created", {}),
            TraceEvent(2.0, "task.0", "task_scheduled", {}),
            TraceEvent(3.0, "task.0", "task_exec_start",
                       {"backend": "flux"}),
        ]
        root = spans_from_events(events)
        task = root.find(CAT_TASK)[0]
        assert task.start == 1.0 and task.end == 3.0
        assert task.attrs["final"] == "open"

    def test_task_without_backend_goes_unrouted(self):
        from repro.analytics.events import TraceEvent

        events = [
            TraceEvent(0.0, "task.0", "task_created", {}),
            TraceEvent(1.0, "task.0", "task_failed", {}),
        ]
        root = spans_from_events(events)
        task = root.find(CAT_TASK)[0]
        assert task.parent.name == "unrouted"
        total = sum(c.duration for c in task.children
                    if c.cat == CAT_PHASE)
        assert total == pytest.approx(task.duration)
