"""Tests for the metrics registry: kinds, labels, snapshots."""

import pytest

from repro.observability import MetricsRegistry
from repro.observability.metrics import Counter, Gauge, Histogram


class TestPrimitives:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        assert c.snapshot() == {"value": 3.5}

    def test_gauge_watermarks(self):
        g = Gauge()
        g.set(5)
        g.set(2)
        g.inc(10)
        g.dec(1)
        assert g.value == 11
        assert g.max == 12
        assert g.min == 2

    def test_gauge_watermark_starts_at_first_value(self):
        g = Gauge()
        g.set(7)
        assert g.min == g.max == 7

    def test_histogram_buckets(self):
        h = Histogram(bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0, 0.1):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(55.6)
        assert h.cumulative() == [2, 3, 4]
        assert h.mean == pytest.approx(13.9)


class TestLabels:
    def test_positional_and_keyword_address_same_child(self):
        reg = MetricsRegistry()
        fam = reg.counter("hits", labels=("backend",))
        fam.labels("flux").inc()
        fam.labels(backend="flux").inc()
        assert fam.labels("flux").value == 2
        assert len(fam) == 1

    def test_label_values_are_stringified(self):
        reg = MetricsRegistry()
        fam = reg.gauge("depth", labels=("instance",))
        fam.labels(3).set(1)
        assert fam.labels("3").value == 1

    def test_wrong_arity_raises(self):
        reg = MetricsRegistry()
        fam = reg.counter("hits", labels=("a", "b"))
        with pytest.raises(ValueError, match="expected 2"):
            fam.labels("only-one")

    def test_unknown_keyword_label_raises(self):
        reg = MetricsRegistry()
        fam = reg.counter("hits", labels=("a",))
        with pytest.raises(ValueError, match="missing label"):
            fam.labels(b="x")
        with pytest.raises(ValueError, match="unknown labels"):
            fam.labels(a="x", b="y")

    def test_mixed_positional_keyword_raises(self):
        reg = MetricsRegistry()
        fam = reg.counter("hits", labels=("a", "b"))
        with pytest.raises(ValueError, match="mix"):
            fam.labels("x", b="y")


class TestRegistry:
    def test_unlabeled_returns_single_child(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        c.inc()
        assert reg.counter("n") is c

    def test_redeclare_same_shape_is_idempotent(self):
        reg = MetricsRegistry()
        fam1 = reg.gauge("g", labels=("x",))
        fam2 = reg.gauge("g", labels=("x",))
        assert fam1 is fam2

    def test_redeclare_different_shape_raises(self):
        reg = MetricsRegistry()
        reg.counter("m", labels=("x",))
        with pytest.raises(ValueError, match="re-declared"):
            reg.gauge("m", labels=("x",))
        with pytest.raises(ValueError, match="re-declared"):
            reg.counter("m", labels=("y",))

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("b_total", "help b", labels=("k",)).labels("x").inc(3)
        reg.gauge("a_gauge").set(7)
        snap = reg.snapshot()
        assert list(snap) == ["a_gauge", "b_total"]  # sorted
        assert snap["b_total"]["kind"] == "counter"
        assert snap["b_total"]["series"] == [
            {"labels": {"k": "x"}, "value": 3.0}]
        assert snap["a_gauge"]["series"][0]["value"] == 7
