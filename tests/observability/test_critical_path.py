"""Critical-path extraction: exact chains on fixtures and real runs.

The fixture tests pin the walk's full rule set — gating requires
ending at-or-after the parent, latest end wins, ties fall to the
longest continuing chain, then latest start, then name — and the
exclusive-time attribution.  The real-run tests check the chain a
live span tree produces is well-formed, deterministic, and survives
the ``spans.json`` round trip.
"""

import pytest

from repro.analytics import critical_path, format_critical_path
from repro.experiments.configs import ExperimentConfig
from repro.experiments.harness import run_experiment
from repro.observability import Span, span_from_dict, spans_from_events

CFG = ExperimentConfig(exp_id="flux_1", launcher="flux", workload="null",
                       n_nodes=2, duration=5.0, waves=1)


def _tree():
    """Hand-built tree with a known chain.

    ::

        session [0, 10]
          pilot.a [0, 10]
            backend.early [1, 4]      ends early: never gates
            backend.b [1, 10]         on path (longest chain)
              task.1 [2, 10]
                exec [9, 10]
            backend.c [5, 10]         same end, later start, no chain
          pilot.stale [0, 7]
    """
    root = Span("session", "session", 0.0, 10.0)
    pa = root.child("pilot.a", "pilot", 0.0, 10.0)
    pa.child("backend.early", "backend", 1.0, 4.0)
    bb = pa.child("backend.b", "backend", 1.0, 10.0)
    t1 = bb.child("task.1", "task", 2.0, 10.0)
    t1.child("exec", "phase", 9.0, 10.0)
    pa.child("backend.c", "backend", 5.0, 10.0)
    root.child("pilot.stale", "pilot", 0.0, 7.0)
    return root


class TestFixtureChain:
    def test_exact_chain(self):
        steps = critical_path(_tree())
        assert [(s.name, s.cat) for s in steps] == [
            ("session", "session"),
            ("pilot.a", "pilot"),
            ("backend.b", "backend"),
            ("task.1", "task"),
            ("exec", "phase"),
        ]
        assert [s.depth for s in steps] == [0, 1, 2, 3, 4]

    def test_exclusive_attribution(self):
        steps = critical_path(_tree())
        exclusive = {s.name: s.exclusive for s in steps}
        assert exclusive["session"] == pytest.approx(0.0)   # 10 - 10
        assert exclusive["pilot.a"] == pytest.approx(1.0)   # 10 - 9
        assert exclusive["backend.b"] == pytest.approx(1.0)  # 9 - 8
        assert exclusive["task.1"] == pytest.approx(7.0)    # 8 - 1
        assert exclusive["exec"] == pytest.approx(1.0)      # leaf

    def test_longest_chain_beats_later_start(self):
        # backend.c ends at the same time and starts later; backend.b
        # wins because its chain continues to the leaves.
        names = [s.name for s in critical_path(_tree())]
        assert "backend.b" in names and "backend.c" not in names

    def test_name_breaks_full_ties(self):
        root = Span("root", "session", 0.0, 5.0)
        root.child("task.x", "task", 1.0, 5.0)
        root.child("task.y", "task", 1.0, 5.0)
        steps = critical_path(root)
        assert steps[1].name == "task.y"

    def test_open_spans_never_gate(self):
        root = Span("root", "session", 0.0, 5.0)
        root.child("open", "task", 0.0, None)
        closed = root.child("closed", "task", 0.0, 5.0)
        assert critical_path(root)[1].name == closed.name

    def test_earlier_ending_child_stops_the_walk(self):
        root = Span("root", "session", 0.0, 10.0)
        root.child("short", "task", 0.0, 6.0)
        steps = critical_path(root)
        assert len(steps) == 1
        assert steps[0].exclusive == pytest.approx(10.0)

    def test_overhanging_grafted_child_clamps_exclusive(self):
        root = Span("root", "session", 0.0, 10.0)
        root.child("overhang", "task", 0.0, 11.0)
        steps = critical_path(root)
        assert steps[0].exclusive == 0.0   # clamped, not negative
        assert steps[1].name == "overhang"

    def test_open_root_yields_nothing(self):
        assert critical_path(Span("open", "session", 0.0, None)) == []

    def test_format_renders_each_level(self):
        text = format_critical_path(critical_path(_tree()))
        for name in ("session", "pilot.a", "backend.b", "task.1", "exec"):
            assert name in text
        assert "excl[s]" in text


class TestRealRun:
    @pytest.fixture(scope="class")
    def root(self):
        result = run_experiment(CFG, keep_session=True)
        root = spans_from_events(iter(result.session.profiler))
        result.session.close()
        return root

    def test_chain_is_well_formed(self, root):
        steps = critical_path(root)
        assert steps[0].cat == "session"
        assert steps[-1].cat in ("task", "phase", "backend")
        for parent, child in zip(steps, steps[1:]):
            assert child.end >= parent.end
            assert child.depth == parent.depth + 1
        for step in steps:
            assert 0.0 <= step.exclusive <= step.duration + 1e-9

    def test_chain_reaches_a_task(self, root):
        cats = [s.cat for s in critical_path(root)]
        assert "task" in cats

    def test_chain_is_deterministic(self, root):
        result = run_experiment(CFG, keep_session=True)
        other = spans_from_events(iter(result.session.profiler))
        result.session.close()
        assert critical_path(root) == critical_path(other)

    def test_round_trips_through_span_dicts(self, root):
        rebuilt = span_from_dict(root.to_dict())
        assert critical_path(rebuilt) == critical_path(root)
