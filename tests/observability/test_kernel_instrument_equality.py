"""The O(1) instrumented dispatch loop vs a step-counted reference.

``Environment.run`` under observability accumulates event counts and
queue-depth extremes in locals and flushes once.  The contract: the
resulting metric values are *exactly* what per-event instrumentation
would have produced.  This test replays the same seeded workload
through ``step()`` (the checked reference path), counting by hand,
and compares every kernel series.
"""

from repro.core import PilotDescription, Session, TaskDescription
from repro.platform import FRONTIER_LATENCIES, generic


def _value(registry, name, **labels):
    fam = registry.get(name)
    return fam.labels(**labels) if labels else fam.labels()


def _build(observe):
    session = Session(cluster=generic(4, cores_per_node=8),
                      latencies=FRONTIER_LATENCIES, seed=7,
                      observe=observe)
    tmgr = session.task_manager()
    pilot = session.pilot_manager().submit_pilots(PilotDescription(nodes=4))
    tmgr.add_pilot(pilot)
    tmgr.submit_tasks([TaskDescription(duration=2.0)] * 24)
    return session


class TestInstrumentedLoopMatchesStepReference:
    def test_counters_and_watermarks_match(self):
        # Reference: same seed, no observability, manual step counts.
        ref = _build(observe=False)
        n_events = n_bootstraps = n_callbacks = 0
        depth_max, depth_min, depth_last = 0, -1, 0
        queue = ref.env._queue
        while queue:
            depth_last = len(queue)
            if depth_last > depth_max:
                depth_max = depth_last
            if depth_min < 0 or depth_last < depth_min:
                depth_min = depth_last
            entry = queue[0]
            if len(entry) == 5:
                if entry[4]:
                    n_bootstraps += 1
                else:
                    n_callbacks += 1
            else:
                n_events += 1
            ref.env.step()

        observed = _build(observe=True)
        observed.run()
        reg = observed.obs.registry

        fam = reg.get("repro_kernel_events_total")
        assert fam.labels(kind="event").value == n_events
        assert fam.labels(kind="bootstrap").value == n_bootstraps
        assert fam.labels(kind="callback").value == n_callbacks

        depth = reg.get("repro_kernel_queue_depth").labels()
        assert depth.max == depth_max
        assert depth.min == depth_min
        assert depth.value == depth_last

    def test_empty_run_leaves_depth_untouched(self):
        session = Session(cluster=generic(2), seed=1, observe=True)
        session.run()  # nothing scheduled beyond session setup
        session.run()  # second run dispatches zero events
        assert session.obs.registry.get(
            "repro_kernel_runs_total").labels().value >= 2
