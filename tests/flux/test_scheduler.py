"""Unit tests for the Flux scheduling policies."""

import pytest

from repro.flux import EasyBackfillPolicy, FcfsPolicy, FluxJob, Jobspec, make_policy
from repro.flux.jobspec import FluxJobState
from repro.platform import ResourceSpec, generic


def _job(jid, cores, duration=100.0, urgency=16):
    return FluxJob(job_id=jid, spec=Jobspec(
        command="x", resources=ResourceSpec(cores=cores),
        duration=duration, urgency=urgency))


@pytest.fixture
def alloc():
    # 2 nodes x 8 cores = 16 cores
    return generic(2).allocate_nodes(2)


class TestFcfs:
    def test_matches_in_order(self, alloc):
        policy = FcfsPolicy()
        queue = [_job("a", 4), _job("b", 4), _job("c", 4)]
        matches = policy.match(queue, alloc, [], now=0.0)
        assert [j.job_id for j, _ in matches] == ["a", "b", "c"]

    def test_blocks_at_first_misfit(self, alloc):
        policy = FcfsPolicy()
        queue = [_job("a", 12), _job("big", 16), _job("small", 1)]
        matches = policy.match(queue, alloc, [], now=0.0)
        # "a" placed (12 cores), "big" cannot fit -> strict FCFS stops.
        assert [j.job_id for j, _ in matches] == ["a"]

    def test_urgency_reorders(self, alloc):
        policy = FcfsPolicy()
        queue = [_job("low", 4, urgency=10), _job("high", 4, urgency=20)]
        matches = policy.match(queue, alloc, [], now=0.0)
        assert matches[0][0].job_id == "high"

    def test_limit_respected(self, alloc):
        policy = FcfsPolicy()
        queue = [_job(str(i), 1) for i in range(10)]
        matches = policy.match(queue, alloc, [], now=0.0, limit=3)
        assert len(matches) == 3

    def test_placements_hold_resources(self, alloc):
        policy = FcfsPolicy()
        matches = policy.match([_job("a", 10)], alloc, [], now=0.0)
        assert alloc.free_cores == 6
        alloc.release(matches[0][1])
        assert alloc.free_cores == 16


class TestEasyBackfill:
    def test_backfills_short_jobs(self, alloc):
        policy = EasyBackfillPolicy()
        running = [_job("r", 8, duration=100.0)]
        running[0].start_time = 0.0
        running[0].placements = alloc.try_place(running[0].spec.resources)
        # Head needs 16 cores: blocked until t=100.  A 50 s filler fits
        # in the window; a 200 s one does not.
        queue = [_job("head", 16, duration=100.0),
                 _job("short", 4, duration=50.0),
                 _job("long", 4, duration=200.0)]
        matches = policy.match(queue, alloc, running, now=0.0)
        assert [j.job_id for j, _ in matches] == ["short"]

    def test_no_blocking_behaves_like_fcfs(self, alloc):
        policy = EasyBackfillPolicy()
        queue = [_job("a", 4), _job("b", 4)]
        matches = policy.match(queue, alloc, [], now=0.0)
        assert [j.job_id for j, _ in matches] == ["a", "b"]

    def test_shadow_time_computation(self, alloc):
        running = [_job("r1", 8, duration=30.0), _job("r2", 8, duration=60.0)]
        for r in running:
            r.start_time = 0.0
            r.placements = alloc.try_place(r.spec.resources)
        head = _job("head", 12, duration=10.0)
        shadow = EasyBackfillPolicy._shadow_time(head, alloc, running, now=0.0)
        # Needs 12 cores: r1's 8 at t=30 are not enough, r2 at t=60 is.
        assert shadow == 60.0

    def test_shadow_time_infinite_when_unsatisfiable(self, alloc):
        head = _job("head", 32, duration=10.0)
        shadow = EasyBackfillPolicy._shadow_time(head, alloc, [], now=0.0)
        assert shadow == float("inf")

    def test_backfill_beats_fcfs_on_heterogeneous_mix(self, alloc):
        running = [_job("r", 12, duration=100.0)]
        running[0].start_time = 0.0
        running[0].placements = alloc.try_place(running[0].spec.resources)
        queue = [_job("head", 16, duration=100.0),
                 _job("f1", 2, duration=10.0),
                 _job("f2", 2, duration=10.0)]
        fcfs = FcfsPolicy().match(list(queue), alloc, running, now=0.0)
        easy = EasyBackfillPolicy().match(list(queue), alloc, running, now=0.0)
        for _, placements in easy:
            alloc.release(placements)
        assert len(fcfs) == 0
        assert len(easy) == 2


class TestFactory:
    def test_make_policy(self):
        assert isinstance(make_policy("fcfs"), FcfsPolicy)
        assert isinstance(make_policy("easy"), EasyBackfillPolicy)

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            make_policy("random")
