"""Unit tests for multi-instance / hierarchical Flux deployments."""

import pytest

from repro.exceptions import RuntimeStartupError
from repro.flux import FluxHierarchy, Jobspec
from repro.platform import DETERMINISTIC_LATENCIES, FRONTIER_LATENCIES, generic
from repro.sim import Environment, RngStreams


@pytest.fixture
def hierarchy(env, rng):
    alloc = generic(8).allocate_nodes(8)
    return FluxHierarchy(env, alloc, FRONTIER_LATENCIES, rng, n_instances=4)


class TestPartitioning:
    def test_instances_get_disjoint_partitions(self, hierarchy):
        seen = set()
        for inst in hierarchy.instances:
            indices = {n.index for n in inst.allocation.nodes}
            assert seen.isdisjoint(indices)
            seen |= indices
        assert len(seen) == 8

    def test_instance_ids_are_unique(self, hierarchy):
        ids = [i.instance_id for i in hierarchy.instances]
        assert len(set(ids)) == 4


class TestConcurrentStartup:
    def test_all_ready_after_start_all(self, env, hierarchy):
        env.run(env.process(hierarchy.start_all()))
        assert hierarchy.all_ready

    def test_startup_not_additive(self, env, rng):
        """Fig. 7: concurrent bootstrap => total ~= max, not sum."""
        alloc = generic(8).allocate_nodes(8)
        h = FluxHierarchy(env, alloc, DETERMINISTIC_LATENCIES, rng,
                          n_instances=8)
        env.run(env.process(h.start_all()))
        lat = DETERMINISTIC_LATENCIES
        # 8 instances of 1 node each: log2(1) = 0 -> mean startup.
        assert env.now == pytest.approx(lat.flux_startup_mean)


class TestRouting:
    def test_least_loaded_balances(self, env, hierarchy):
        env.run(env.process(hierarchy.start_all()))
        for _ in range(100):
            inst = hierarchy.least_loaded()
            inst.submit(Jobspec(command="x", duration=50.0))
        counts = [i.n_submitted for i in hierarchy.instances]
        assert max(counts) - min(counts) <= 1

    def test_least_loaded_requires_ready_instance(self, env, hierarchy):
        with pytest.raises(RuntimeStartupError):
            hierarchy.least_loaded()

    def test_shutdown_all(self, env, hierarchy):
        env.run(env.process(hierarchy.start_all()))
        hierarchy.shutdown_all()
        assert not any(i.is_ready for i in hierarchy.instances)


class TestNested:
    def test_spawn_nested_instance(self, env, hierarchy):
        env.run(env.process(hierarchy.start_all()))
        parent = hierarchy.instances[0]
        child = hierarchy.spawn_nested(parent, n_nodes=1)
        env.run(env.process(child.start()))
        assert child.is_ready
        assert child.allocation.n_nodes == 1
        assert child in hierarchy.instances

    def test_nested_child_must_be_smaller(self, env, hierarchy):
        env.run(env.process(hierarchy.start_all()))
        parent = hierarchy.instances[0]
        with pytest.raises(RuntimeStartupError):
            hierarchy.spawn_nested(parent, n_nodes=parent.allocation.n_nodes)

    def test_nested_requires_ready_parent(self, env, hierarchy):
        with pytest.raises(RuntimeStartupError):
            hierarchy.spawn_nested(hierarchy.instances[0], n_nodes=1)

    def test_nested_child_runs_jobs(self, env, hierarchy):
        env.run(env.process(hierarchy.start_all()))
        child = hierarchy.spawn_nested(hierarchy.instances[0], n_nodes=1)
        env.run(env.process(child.start()))
        job = child.submit(Jobspec(command="x", duration=1.0))
        env.run()
        assert job.done and not job.failed
