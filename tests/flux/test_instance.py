"""Unit tests for the Flux instance lifecycle and dispatch machinery."""

import pytest

from repro.exceptions import JobspecError, RuntimeStartupError
from repro.flux import (
    EV_EXCEPTION,
    EV_FINISH,
    EV_START,
    FluxInstance,
    InstanceState,
    Jobspec,
)
from repro.platform import (
    DETERMINISTIC_LATENCIES,
    FRONTIER_LATENCIES,
    ResourceSpec,
    generic,
)
from repro.sim import Environment, RngStreams


def make_instance(env, rng, n_nodes=4, latencies=FRONTIER_LATENCIES,
                  policy="fcfs"):
    alloc = generic(n_nodes).allocate_nodes(n_nodes)
    return FluxInstance(env, alloc, latencies, rng,
                        instance_id="flux.test", policy=policy)


class TestLifecycle:
    def test_bootstrap_reaches_ready(self, env, rng):
        inst = make_instance(env, rng)
        env.run(env.process(inst.start()))
        assert inst.is_ready
        assert env.now > 15.0  # ~20 s bootstrap

    def test_startup_time_near_20s(self, env, rng):
        inst = make_instance(env, rng, latencies=DETERMINISTIC_LATENCIES)
        env.run(env.process(inst.start()))
        lat = DETERMINISTIC_LATENCIES
        assert env.now == pytest.approx(lat.flux_startup_mean
                                        + 2 * lat.flux_startup_per_log2node)

    def test_double_start_raises(self, env, rng):
        inst = make_instance(env, rng)
        env.run(env.process(inst.start()))
        with pytest.raises(RuntimeStartupError):
            env.run(env.process(inst.start()))

    def test_submit_before_ready_raises(self, env, rng):
        inst = make_instance(env, rng)
        with pytest.raises(RuntimeStartupError):
            inst.submit(Jobspec(command="x"))

    def test_lane_count_scales_sublinearly(self, env, rng):
        lanes = {}
        for n in (1, 16, 64):
            lanes[n] = make_instance(env, rng, n_nodes=n).n_lanes
        assert lanes[1] == 1
        assert 1 < lanes[16] < 16
        assert lanes[16] < lanes[64] < 64

    def test_shutdown_stops_accepting(self, env, rng):
        inst = make_instance(env, rng)
        env.run(env.process(inst.start()))
        inst.shutdown()
        assert inst.state == InstanceState.STOPPED
        with pytest.raises(RuntimeStartupError):
            inst.submit(Jobspec(command="x"))


class TestExecution:
    def test_jobs_run_to_completion(self, env, rng):
        inst = make_instance(env, rng)
        env.run(env.process(inst.start()))
        jobs = [inst.submit(Jobspec(command="x", duration=5.0))
                for _ in range(20)]
        env.run()
        assert inst.n_completed == 20
        assert all(j.done and not j.failed for j in jobs)
        assert all(j.finish_time - j.start_time == pytest.approx(5.0)
                   for j in jobs)

    def test_unsatisfiable_job_rejected_synchronously(self, env, rng):
        inst = make_instance(env, rng)
        env.run(env.process(inst.start()))
        with pytest.raises(JobspecError):
            inst.submit(Jobspec(command="x",
                                resources=ResourceSpec(cores=10000)))

    def test_resources_released_after_job(self, env, rng):
        inst = make_instance(env, rng)
        env.run(env.process(inst.start()))
        inst.submit(Jobspec(command="x", duration=1.0,
                            resources=ResourceSpec(cores=8)))
        env.run()
        assert inst.allocation.free_cores == inst.allocation.total_cores

    def test_concurrency_bounded_by_cores(self, env, rng):
        inst = make_instance(env, rng, n_nodes=1)  # 8 cores
        env.run(env.process(inst.start()))
        for _ in range(24):
            inst.submit(Jobspec(command="x", duration=60.0))
        peak = [0]

        def monitor(env):
            while inst.n_completed < 24:
                peak[0] = max(peak[0], inst.n_running)
                yield env.timeout(1.0)

        env.process(monitor(env))
        env.run()
        assert peak[0] <= 8

    def test_event_stream_lifecycle(self, env, rng):
        inst = make_instance(env, rng)
        queue = inst.events.subscribe()
        env.run(env.process(inst.start()))
        inst.submit(Jobspec(command="x", duration=1.0))
        env.run()
        names = [queue.try_get().name for _ in range(len(queue._items) + 3)
                 if len(queue)]
        assert EV_START in names
        assert EV_FINISH in names

    def test_fail_attribute_raises_exception_event(self, env, rng):
        inst = make_instance(env, rng)
        env.run(env.process(inst.start()))
        job = inst.submit(Jobspec(command="x", duration=1.0,
                                  attributes={"fail": True}))
        env.run()
        assert job.failed
        assert inst.n_failed == 1
        names = [e.name for e in inst.events.history if e.job_id == job.job_id]
        assert EV_EXCEPTION in names

    def test_throughput_matches_lane_model(self, env, rng):
        lat = DETERMINISTIC_LATENCIES
        inst = make_instance(env, rng, n_nodes=4, latencies=lat)
        env.run(env.process(inst.start()))
        jobs = [inst.submit(Jobspec(command="x", duration=0.0))
                for _ in range(400)]
        env.run()
        starts = sorted(j.start_time for j in jobs)
        rate = (len(starts) - 1) / (starts[-1] - starts[0])
        expected = inst.n_lanes * lat.flux_lane_rate
        assert rate == pytest.approx(expected, rel=0.05)


class TestCrash:
    def test_crash_fails_pending_and_running(self, env, rng):
        inst = make_instance(env, rng)
        env.run(env.process(inst.start()))
        jobs = [inst.submit(Jobspec(command="x", duration=1000.0))
                for _ in range(50)]
        env.run(until=env.now + 30.0)
        inst.crash("broker died")
        env.run()
        assert inst.state == InstanceState.FAILED
        assert all(j.failed for j in jobs)

    def test_crash_releases_resources(self, env, rng):
        inst = make_instance(env, rng)
        env.run(env.process(inst.start()))
        for _ in range(10):
            inst.submit(Jobspec(command="x", duration=1000.0))
        env.run(until=env.now + 30.0)
        inst.crash()
        assert inst.allocation.free_cores == inst.allocation.total_cores

    def test_crash_idempotent(self, env, rng):
        inst = make_instance(env, rng)
        env.run(env.process(inst.start()))
        inst.crash()
        inst.crash()
        assert inst.state == InstanceState.FAILED
