"""Tests for flux resource-release events."""

import pytest

from repro.flux import EV_FINISH, EV_RELEASE, FluxInstance, Jobspec
from repro.platform import FRONTIER_LATENCIES, ResourceSpec, generic


@pytest.fixture
def instance(env, rng):
    alloc = generic(2).allocate_nodes(2)
    inst = FluxInstance(env, alloc, FRONTIER_LATENCIES, rng,
                        instance_id="flux.rel")
    env.run(env.process(inst.start()))
    return inst


class TestReleaseEvents:
    def test_release_follows_finish(self, env, instance):
        queue = instance.events.subscribe()
        instance.submit(Jobspec(command="x", duration=1.0,
                                resources=ResourceSpec(cores=4)))
        env.run()
        names = [e.name for e in instance.events.history]
        assert names.index(EV_RELEASE) > names.index(EV_FINISH)

    def test_release_reports_free_pool(self, env, instance):
        instance.submit(Jobspec(command="x", duration=1.0,
                                resources=ResourceSpec(cores=4)))
        env.run()
        release = next(e for e in instance.events.history
                       if e.name == EV_RELEASE)
        assert release.meta["free_cores"] == instance.allocation.total_cores

    def test_canceled_job_also_releases(self, env, instance):
        job = instance.submit(Jobspec(command="x", duration=1e6,
                                      resources=ResourceSpec(cores=4)))
        env.run(until=env.now + 30.0)
        instance.cancel(job.job_id)
        env.run(until=env.now + 5.0)
        assert any(e.name == EV_RELEASE for e in instance.events.history)

    def test_one_release_per_job(self, env, instance):
        for _ in range(5):
            instance.submit(Jobspec(command="x", duration=1.0))
        env.run()
        releases = [e for e in instance.events.history
                    if e.name == EV_RELEASE]
        assert len(releases) == 5
