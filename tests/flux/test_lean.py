"""Memory-lean mode: drop post-hoc retention, keep behavior.

``Session(lean=True)`` plumbs down to every Flux instance: retired
and failed jobs are popped from the per-instance job table and the
event stream keeps no history.  Simulated behavior — and therefore
the trace — must be identical; only what is *retained* differs.
"""

from repro.core import PartitionSpec, PilotDescription, Session, \
    TaskDescription
from repro.platform import FRONTIER_LATENCIES, generic


def _run(lean: bool):
    session = Session(cluster=generic(4, cores_per_node=8),
                      latencies=FRONTIER_LATENCIES, seed=42, lean=lean)
    pmgr = session.pilot_manager()
    tmgr = session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=4, partitions=(PartitionSpec("flux", n_instances=2),)))
    tmgr.add_pilot(pilot)
    tasks = tmgr.submit_tasks([TaskDescription(duration=1.0)] * 32)
    session.run(tmgr.wait_tasks())
    return session, pilot, tasks


class TestLeanFluxRetention:
    def test_lean_drops_retired_jobs(self):
        session, pilot, tasks = _run(lean=True)
        assert all(t.succeeded for t in tasks)
        hierarchy = pilot.agent.executors["flux"].hierarchy
        for inst in hierarchy.instances:
            assert inst._jobs == {}, "retired jobs must be dropped"
            assert inst.events._history == []

    def test_default_keeps_them(self):
        session, pilot, tasks = _run(lean=False)
        hierarchy = pilot.agent.executors["flux"].hierarchy
        assert sum(len(inst._jobs) for inst in hierarchy.instances) == 32
        assert any(inst.events._history for inst in hierarchy.instances)

    def test_lean_counters_still_accurate(self):
        session, pilot, _ = _run(lean=True)
        hierarchy = pilot.agent.executors["flux"].hierarchy
        assert sum(inst.n_completed for inst in hierarchy.instances) == 32
