"""Unit tests for the Flux job event stream."""

from repro.flux import EV_FINISH, EV_START, EV_SUBMIT, EventStream
from repro.sim import Environment


class TestEventStream:
    def test_publish_reaches_subscriber(self, env):
        stream = EventStream(env)
        queue = stream.subscribe()
        stream.publish("job1", EV_SUBMIT)
        env.run()
        ev = queue.try_get()
        assert ev.job_id == "job1"
        assert ev.name == EV_SUBMIT

    def test_delivery_delay(self, env):
        stream = EventStream(env, delivery_delay=0.5)
        queue = stream.subscribe()
        received = []

        def watcher(env, queue):
            ev = yield queue.get()
            received.append((env.now, ev.name))

        env.process(watcher(env, queue))
        stream.publish("j", EV_START)
        env.run()
        assert received == [(0.5, EV_START)]

    def test_fan_out_to_all_subscribers(self, env):
        stream = EventStream(env)
        queues = [stream.subscribe() for _ in range(3)]
        stream.publish("j", EV_FINISH, status=0)
        env.run()
        for q in queues:
            ev = q.try_get()
            assert ev.name == EV_FINISH
            assert ev.meta["status"] == 0

    def test_order_preserved(self, env):
        stream = EventStream(env)
        queue = stream.subscribe()
        for name in (EV_SUBMIT, EV_START, EV_FINISH):
            stream.publish("j", name)
        env.run()
        names = [queue.try_get().name for _ in range(3)]
        assert names == [EV_SUBMIT, EV_START, EV_FINISH]

    def test_history_records_everything(self, env):
        stream = EventStream(env)
        stream.publish("a", EV_SUBMIT)
        stream.publish("b", EV_SUBMIT)
        assert [e.job_id for e in stream.history] == ["a", "b"]

    def test_no_subscribers_is_fine(self, env):
        stream = EventStream(env)
        stream.publish("j", EV_SUBMIT)
        env.run()
        assert len(stream.history) == 1

    def test_event_timestamps_are_publish_time(self, env):
        stream = EventStream(env, delivery_delay=1.0)
        queue = stream.subscribe()

        def scenario(env):
            yield env.timeout(5.0)
            stream.publish("j", EV_START)

        env.process(scenario(env))
        env.run()
        ev = queue.try_get()
        assert ev.time == 5.0
