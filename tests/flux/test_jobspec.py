"""Unit tests for Flux jobspec validation."""

import pytest

from repro.exceptions import JobspecError
from repro.flux import FluxJob, FluxJobState, Jobspec
from repro.platform import ResourceSpec


class TestValidation:
    def test_minimal(self):
        spec = Jobspec(command="hostname")
        assert spec.resources.cores == 1
        assert spec.urgency == 16

    def test_empty_command(self):
        with pytest.raises(JobspecError):
            Jobspec(command="")

    def test_negative_duration(self):
        with pytest.raises(JobspecError):
            Jobspec(command="x", duration=-1)

    def test_urgency_bounds(self):
        Jobspec(command="x", urgency=0)
        Jobspec(command="x", urgency=31)
        with pytest.raises(JobspecError):
            Jobspec(command="x", urgency=32)
        with pytest.raises(JobspecError):
            Jobspec(command="x", urgency=-1)

    def test_validate_against_pool(self):
        spec = Jobspec(command="x", resources=ResourceSpec(cores=100))
        spec.validate_against(total_cores=100, total_gpus=0)
        with pytest.raises(JobspecError):
            spec.validate_against(total_cores=99, total_gpus=0)

    def test_validate_gpus(self):
        spec = Jobspec(command="x", resources=ResourceSpec(cores=1, gpus=9))
        with pytest.raises(JobspecError):
            spec.validate_against(total_cores=100, total_gpus=8)


class TestFluxJob:
    def test_initial_state(self):
        job = FluxJob(job_id="j1", spec=Jobspec(command="x"))
        assert job.state == FluxJobState.DEPEND
        assert not job.done
        assert not job.failed

    def test_done_and_failed_flags(self):
        job = FluxJob(job_id="j1", spec=Jobspec(command="x"))
        job.state = FluxJobState.INACTIVE
        assert job.done
        job.exception = "boom"
        assert job.failed

    def test_state_order_is_complete(self):
        assert FluxJobState.ORDER == (
            "DEPEND", "SCHED", "RUN", "CLEANUP", "INACTIVE")
