"""Edge-case tests for the Flux instance."""

import pytest

from repro.flux import FluxInstance, InstanceState, Jobspec
from repro.platform import FRONTIER_LATENCIES, generic
from repro.sim import Environment, RngStreams


def ready_instance(env, rng, n_nodes=2):
    alloc = generic(n_nodes).allocate_nodes(n_nodes)
    inst = FluxInstance(env, alloc, FRONTIER_LATENCIES, rng,
                        instance_id="flux.edge")
    env.run(env.process(inst.start()))
    return inst


class TestLoadFactor:
    def test_within_configured_bounds(self, env, rng):
        lat = FRONTIER_LATENCIES
        for seed in range(20):
            e = Environment()
            r = RngStreams(seed)
            alloc = generic(2).allocate_nodes(2)
            inst = FluxInstance(e, alloc, lat, r)
            e.run(e.process(inst.start()))
            assert lat.flux_load_min <= inst._load_factor <= lat.flux_load_max

    def test_larger_instances_slower_on_average(self):
        lat = FRONTIER_LATENCIES
        small, large = [], []
        for seed in range(30):
            for n_nodes, sink in ((1, small), (1024, large)):
                e = Environment()
                r = RngStreams(seed)
                alloc = generic(n_nodes, cores_per_node=1).allocate_nodes(
                    n_nodes)
                inst = FluxInstance(e, alloc, lat, r)
                e.run(e.process(inst.start()))
                sink.append(inst._load_factor)
        assert (sum(large) / len(large)) < (sum(small) / len(small))


class TestShutdownEdges:
    def test_shutdown_with_queued_jobs_fails_them(self, env, rng):
        inst = ready_instance(env, rng)
        blockers = [inst.submit(Jobspec(command="x", duration=1e6))
                    for _ in range(16)]
        queued = [inst.submit(Jobspec(command="y", duration=1.0))
                  for _ in range(8)]
        env.run(until=env.now + 30.0)
        inst.shutdown()
        env.run(until=env.now + 5.0)
        assert all(j.failed for j in queued)
        assert inst.state == InstanceState.STOPPED

    def test_shutdown_idempotent(self, env, rng):
        inst = ready_instance(env, rng)
        inst.shutdown()
        inst.shutdown()
        assert inst.state == InstanceState.STOPPED

    def test_crash_then_shutdown_keeps_failed_state(self, env, rng):
        inst = ready_instance(env, rng)
        inst.crash("boom")
        inst.shutdown()
        assert inst.state == InstanceState.FAILED


class TestCancellationEdges:
    def test_cancel_while_in_ingest_pipeline(self, env, rng):
        inst = ready_instance(env, rng)
        # Submit a burst; cancel one job before the ingest loop gets
        # to it (no sim time has passed yet).
        jobs = [inst.submit(Jobspec(command="x", duration=1.0))
                for _ in range(50)]
        victim = jobs[-1]
        assert inst.cancel(victim.job_id, reason="early cancel")
        env.run()
        assert victim.failed
        done = [j for j in jobs if j.done and not j.failed]
        assert len(done) == 49

    def test_cancel_completed_job_returns_false(self, env, rng):
        inst = ready_instance(env, rng)
        job = inst.submit(Jobspec(command="x", duration=1.0))
        env.run()
        assert inst.cancel(job.job_id) is False


class TestDeterminism:
    def test_identical_seed_identical_schedule(self):
        def run(seed):
            env = Environment()
            rng = RngStreams(seed)
            alloc = generic(2).allocate_nodes(2)
            inst = FluxInstance(env, alloc, FRONTIER_LATENCIES, rng)
            env.run(env.process(inst.start()))
            jobs = [inst.submit(Jobspec(command="x", duration=2.0))
                    for _ in range(100)]
            env.run()
            return [round(j.start_time, 9) for j in jobs]

        assert run(7) == run(7)
        assert run(7) != run(8)
