"""Process-parallel harness: serial/parallel equivalence.

The contract of :mod:`repro.experiments.parallel` is that fanning
runs out over worker processes changes *nothing* about the science:
same metrics, same ordering, byte-identical trace exports.  These
tests pin that contract on a seeded hybrid (flux+dragon) experiment.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import (
    ExperimentConfig,
    resolve_jobs,
    run_many,
    run_repetitions,
)

#: Small but real hybrid run: both backends, mixed CPU/GPU tasks.
CFG = ExperimentConfig(exp_id="hybrid_par", launcher="flux+dragon",
                       workload="mixed", n_nodes=2, n_partitions=1,
                       duration=0.0, waves=1, seed=7)


def _metrics(r):
    return (r.n_tasks, r.n_done, r.n_failed, r.throughput.avg,
            r.throughput.peak, r.utilization_cores, r.makespan)


# -- resolve_jobs -----------------------------------------------------------

def test_resolve_jobs_auto_uses_cores():
    import os

    assert resolve_jobs(None) == (os.cpu_count() or 1)
    assert resolve_jobs("auto") == (os.cpu_count() or 1)
    assert resolve_jobs(0) == (os.cpu_count() or 1)


def test_resolve_jobs_explicit_and_clamped():
    assert resolve_jobs(3) == 3
    assert resolve_jobs("3") == 3
    assert resolve_jobs(8, n_items=2) == 2
    assert resolve_jobs(1, n_items=100) == 1


def test_resolve_jobs_rejects_garbage():
    with pytest.raises(ConfigurationError):
        resolve_jobs("many")
    with pytest.raises(ConfigurationError):
        resolve_jobs(-2)
    with pytest.raises(ConfigurationError):
        resolve_jobs("-1")
    with pytest.raises(ConfigurationError):
        resolve_jobs(())


def test_resolve_jobs_string_zero_means_auto():
    import os

    assert resolve_jobs("0") == (os.cpu_count() or 1)


def test_resolve_jobs_oversubscription_allowed():
    # More workers than cores is the user's call; only n_items clamps.
    import os

    cores = os.cpu_count() or 1
    assert resolve_jobs(cores + 9) == cores + 9
    assert resolve_jobs(cores + 9, n_items=cores + 2) == cores + 2
    # Degenerate n_items never drops below one worker.
    assert resolve_jobs(4, n_items=0) == 1


# -- run_many ---------------------------------------------------------------

def test_run_many_parallel_matches_serial(tmp_path):
    cfgs = [CFG.with_seed(CFG.seed + i) for i in range(3)]
    ser_paths = [str(tmp_path / f"ser_{i}.jsonl") for i in range(3)]
    par_paths = [str(tmp_path / f"par_{i}.jsonl") for i in range(3)]

    serial = run_many(cfgs, jobs=1, profile_paths=ser_paths)
    parallel = run_many(cfgs, jobs=2, profile_paths=par_paths)

    assert len(serial) == len(parallel) == 3
    for s, p in zip(serial, parallel):
        assert _metrics(s) == _metrics(p)
        # Parallel results are stripped of unpicklable state.
        assert p.tasks == [] and p.session is None
    # The trace a worker exported is byte-identical to the serial one.
    for sp, pp in zip(ser_paths, par_paths):
        with open(sp, "rb") as f_s, open(pp, "rb") as f_p:
            assert f_s.read() == f_p.read()


def test_run_many_preserves_input_order():
    cfgs = [CFG.with_seed(10), CFG.with_seed(20)]
    results = run_many(cfgs, jobs=2)
    assert [r.config.seed for r in results] == [10, 20]


def test_run_many_rejects_mismatched_profile_paths(tmp_path):
    with pytest.raises(ConfigurationError):
        run_many([CFG], jobs=1, profile_paths=[None, None])


# -- run_repetitions --------------------------------------------------------

def test_run_repetitions_parallel_aggregate_matches_serial():
    serial = run_repetitions(CFG, n_reps=2)
    parallel = run_repetitions(CFG, n_reps=2, parallel=2)
    assert serial.n_reps == parallel.n_reps == 2
    assert serial.throughput_avg == parallel.throughput_avg
    assert serial.throughput_max == parallel.throughput_max
    assert serial.utilization_avg == parallel.utilization_avg
    assert serial.makespan_avg == parallel.makespan_avg


def test_run_repetitions_parallel_one_keeps_tasks():
    # parallel=1 resolves to the in-process serial path, which keeps
    # the per-task objects available for time-series analysis.
    agg = run_repetitions(CFG, n_reps=1, parallel=1)
    assert agg.results[0].tasks
