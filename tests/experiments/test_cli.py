"""Tests for the experiments CLI."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "flux_1" in out
        assert "impeccable_flux" in out

    def test_run_single(self, capsys):
        assert main(["run", "flux_1", "--nodes", "1", "--waves", "1"]) == 0
        out = capsys.readouterr().out
        assert "flux_1" in out
        assert "makespan" in out

    def test_run_with_reps(self, capsys):
        assert main(["run", "srun", "--nodes", "1", "--waves", "1",
                     "--reps", "2"]) == 0
        out = capsys.readouterr().out
        assert "avg tasks/s" in out

    def test_table1_filtered(self, capsys):
        assert main(["table1", "--waves", "1", "--max-nodes", "2"]) == 0
        out = capsys.readouterr().out
        # srun's only Table-1 config is 4 nodes, filtered out here.
        assert "flux_1" in out
        assert "srun" not in out.replace("flux+dragon", "")


    def test_unknown_exp_is_reported_not_raised(self, capsys):
        # Stack errors surface as a one-line message and a non-zero
        # exit, not a traceback.
        assert main(["run", "warpdrive"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "warpdrive" in err

    def test_run_with_summary(self, capsys):
        assert main(["run", "flux_1", "--nodes", "1", "--waves", "1",
                     "--summary"]) == 0
        out = capsys.readouterr().out
        assert "backend" in out
        assert "core utilization" in out

    def test_run_with_profile_export(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert main(["run", "flux_1", "--nodes", "1", "--waves", "1",
                     "--profile", str(path)]) == 0
        assert path.exists()
        from repro.analytics import load_events

        events = load_events(path)
        assert len(events) > 100


class TestTraceCli:
    def _bundle(self, tmp_path):
        out = tmp_path / "bundle"
        assert main(["trace", "run", "flux_1", "--nodes", "1",
                     "--waves", "1", "--out", str(out)]) == 0
        return out

    def test_trace_run_writes_bundle(self, capsys, tmp_path):
        out = self._bundle(tmp_path)
        stdout = capsys.readouterr().out
        assert "wrote observability bundle" in stdout
        assert (out / "manifest.json").is_file()
        assert (out / "trace.json").is_file()

    def test_trace_inspect(self, capsys, tmp_path):
        out = self._bundle(tmp_path)
        capsys.readouterr()
        assert main(["trace", "inspect", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "flux_1" in stdout
        assert "phases:" in stdout
        assert "schedule=" in stdout

    def test_trace_export_from_profile(self, capsys, tmp_path):
        import json

        out = self._bundle(tmp_path)
        capsys.readouterr()
        target = tmp_path / "exported.json"
        assert main(["trace", "export", str(out / "profile.jsonl"),
                     "--out", str(target)]) == 0
        stdout = capsys.readouterr().out
        assert "perfetto" in stdout.lower()
        from repro.observability import validate_chrome_trace

        assert validate_chrome_trace(json.loads(target.read_text())) == []

    def test_run_with_bundle_flag(self, capsys, tmp_path):
        out = tmp_path / "b2"
        assert main(["run", "flux_1", "--nodes", "1", "--waves", "1",
                     "--bundle", str(out)]) == 0
        assert (out / "metrics.json").is_file()
