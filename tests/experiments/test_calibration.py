"""Tests pinning the latency calibration to its documented anchors."""

import pytest

from repro.experiments.calibration import (
    PAPER_ANCHORS,
    check_calibration,
)
from repro.platform import FRONTIER_LATENCIES


class TestCalibration:
    def test_all_anchors_hold_for_default_model(self):
        reports = check_calibration(FRONTIER_LATENCIES)
        failing = [r for r in reports if not r.ok]
        assert not failing, "\n".join(
            f"{r.name}: paper={r.paper_value} predicted={r.predicted:.2f} "
            f"({100 * r.deviation:.1f} % off)" for r in failing)

    def test_anchor_coverage(self):
        """Every launcher family has at least one anchor."""
        names = " ".join(a.name for a in PAPER_ANCHORS)
        for keyword in ("srun", "flux", "dragon", "task-management"):
            assert keyword in names, keyword

    def test_detuned_model_fails(self):
        """The checker actually detects calibration drift."""
        detuned = FRONTIER_LATENCIES.with_overrides(srun_ctl_base=0.1)
        reports = check_calibration(detuned)
        assert any(not r.ok for r in reports)

    def test_reports_carry_values(self):
        report = check_calibration()[0]
        assert report.paper_value > 0
        assert report.predicted > 0
        assert report.deviation >= 0
