"""Tests for the experiment harness (small-scale end-to-end runs)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import (
    ExperimentConfig,
    build_pilot_description,
    build_workload,
    config_by_id,
    run_experiment,
    run_repetitions,
)


class TestBuildPilot:
    def test_srun(self):
        pd = build_pilot_description(config_by_id("srun"))
        assert [p.backend for p in pd.partitions] == ["srun"]

    def test_flux_partitions(self):
        pd = build_pilot_description(config_by_id("flux_n", n_nodes=64,
                                                  n_partitions=16))
        assert pd.partitions[0].n_instances == 16

    def test_hybrid_equal_shares(self):
        pd = build_pilot_description(config_by_id("flux+dragon", n_nodes=16,
                                                  n_partitions=4))
        backends = [p.backend for p in pd.partitions]
        assert backends == ["flux", "dragon"]
        assert pd.node_shares() == [8, 8]

    def test_impeccable_uses_backfill(self):
        pd = build_pilot_description(config_by_id("impeccable_flux"))
        assert pd.partitions[0].policy == "easy"


class TestBuildWorkload:
    def test_null_counts(self):
        cfg = config_by_id("flux_1", n_nodes=4, waves=2)
        descs = build_workload(cfg, cores_per_node=56)
        assert len(descs) == 4 * 56 * 2
        assert all(d.duration == 0.0 for d in descs)

    def test_mixed_split(self):
        cfg = config_by_id("flux+dragon", n_nodes=4, waves=2)
        descs = build_workload(cfg, cores_per_node=56)
        funcs = sum(1 for d in descs if d.mode == "function")
        assert funcs == len(descs) // 2

    def test_impeccable_not_synthetic(self):
        with pytest.raises(ConfigurationError):
            build_workload(config_by_id("impeccable_flux"))


class TestRunExperiment:
    @pytest.mark.parametrize("exp_id,nodes", [
        ("srun", 1), ("flux_1", 4), ("dragon", 4), ("flux+dragon", 4),
    ])
    def test_small_runs_complete(self, exp_id, nodes):
        cfg = config_by_id(exp_id, n_nodes=nodes, waves=1)
        result = run_experiment(cfg)
        assert result.n_done == result.n_tasks
        assert result.n_failed == 0
        assert result.throughput.avg > 0

    def test_keep_session(self):
        cfg = config_by_id("flux_1", n_nodes=1, waves=1)
        result = run_experiment(cfg, keep_session=True)
        assert result.session is not None
        assert len(result.session.profiler) > 0

    def test_session_dropped_by_default(self):
        cfg = config_by_id("flux_1", n_nodes=1, waves=1)
        assert run_experiment(cfg).session is None

    def test_startup_overheads_recorded(self):
        cfg = config_by_id("flux+dragon", n_nodes=4, waves=1)
        result = run_experiment(cfg)
        kinds = {uid.split(".")[-2] for uid, _ in result.startup_overheads}
        assert len(result.startup_overheads) >= 2

    def test_seed_changes_results(self):
        cfg = config_by_id("flux_1", n_nodes=4, waves=1)
        r0 = run_experiment(cfg.with_seed(0))
        r1 = run_experiment(cfg.with_seed(1))
        assert r0.throughput.avg != r1.throughput.avg

    def test_same_seed_reproduces(self):
        cfg = config_by_id("flux_1", n_nodes=4, waves=1)
        assert (run_experiment(cfg).throughput.avg
                == run_experiment(cfg).throughput.avg)


class TestRepetitions:
    def test_aggregation(self):
        cfg = config_by_id("flux_1", n_nodes=4, waves=1)
        agg = run_repetitions(cfg, n_reps=3)
        assert agg.n_reps == 3
        assert len(agg.results) == 3
        per_rep_avg = [r.throughput.avg for r in agg.results]
        assert agg.throughput_avg == pytest.approx(
            sum(per_rep_avg) / 3)
        assert agg.throughput_max == max(r.throughput.peak
                                         for r in agg.results)

    def test_invalid_reps(self):
        with pytest.raises(ConfigurationError):
            run_repetitions(config_by_id("srun"), n_reps=0)
