"""Tests for the PRRTE launcher in the experiment harness."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    LAUNCHER_PRRTE,
    build_pilot_description,
    run_experiment,
)


class TestPrrteConfig:
    def test_launcher_registered(self):
        assert LAUNCHER_PRRTE == "prrte"
        cfg = ExperimentConfig(exp_id="x", launcher="prrte",
                               workload="null", n_nodes=4)
        assert cfg.launcher == "prrte"

    def test_pilot_description(self):
        cfg = ExperimentConfig(exp_id="x", launcher="prrte",
                               workload="null", n_nodes=4)
        pd = build_pilot_description(cfg)
        assert [p.backend for p in pd.partitions] == ["prrte"]

    def test_end_to_end_null_run(self):
        cfg = ExperimentConfig(exp_id="x", launcher="prrte",
                               workload="null", n_nodes=2, waves=1)
        result = run_experiment(cfg)
        assert result.n_done == result.n_tasks
        # PRRTE's DVM rate at tiny scale: well above srun, below the
        # theoretical 141/s ceiling.
        assert 40 < result.throughput.avg <= 160

    def test_dummy_utilization_not_capped(self):
        cfg = ExperimentConfig(exp_id="x", launcher="prrte",
                               workload="dummy", n_nodes=2,
                               duration=180.0, waves=2)
        result = run_experiment(cfg)
        assert result.utilization_cores > 0.9
