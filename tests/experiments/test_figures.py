"""Tests for the figure-data export pipeline (quick mode)."""

import csv

import pytest

from repro.experiments import FigureData, export_figures
from repro.experiments.figures import (
    GENERATORS,
    fig4_data,
    fig7_data,
)


class TestFigureData:
    def test_to_csv_roundtrip(self, tmp_path):
        data = FigureData(
            figure_id="figX", title="test", columns=("a", "b"),
            rows=[(1, 2.5), (3, 4.5)], notes="hello")
        path = data.to_csv(tmp_path / "x.csv")
        with path.open() as fh:
            lines = list(csv.reader(fh))
        assert lines[0][0].startswith("# figX")
        assert lines[2] == ["a", "b"]
        assert lines[3] == ["1", "2.5"]

    def test_all_paper_figures_have_generators(self):
        assert set(GENERATORS) == {"fig4", "fig5", "fig6", "fig7", "fig8"}


class TestGenerators:
    def test_fig4_quick(self):
        data = fig4_data(quick=True)
        assert data.columns == ("time_s", "running_tasks")
        assert data.rows
        # Ceiling visible in the data itself.
        assert max(v for _, v in data.rows) == 112
        assert "utilization" in data.notes

    def test_fig7_quick(self):
        data = fig7_data(quick=True)
        backends = {row[0] for row in data.rows}
        assert backends == {"flux", "dragon", "prrte"}
        flux = [row[2] for row in data.rows if row[0] == "flux"]
        dragon = [row[2] for row in data.rows if row[0] == "dragon"]
        assert min(flux) > max(dragon)  # flux bootstrap slower


class TestExport:
    def test_export_selected(self, tmp_path):
        written = export_figures(tmp_path, figures=["fig4"], quick=True)
        assert len(written) == 1
        assert written[0].name == "fig4.csv"
        assert written[0].exists()

    def test_unknown_figure(self, tmp_path):
        with pytest.raises(ValueError, match="unknown figure"):
            export_figures(tmp_path, figures=["fig99"], quick=True)

    def test_cli_figures(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["figures", "--out", str(tmp_path), "--only", "fig4",
                     "--quick"]) == 0
        assert (tmp_path / "fig4.csv").exists()
