"""Unit tests for the Table-1 experiment configurations."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import ExperimentConfig, config_by_id, table1_configs


class TestValidation:
    def test_unknown_launcher(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(exp_id="x", launcher="mesos", workload="null",
                             n_nodes=1)

    def test_unknown_workload(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(exp_id="x", launcher="flux", workload="spin",
                             n_nodes=1)

    def test_hybrid_needs_two_nodes(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(exp_id="x", launcher="flux+dragon",
                             workload="mixed", n_nodes=1)

    def test_with_seed(self):
        cfg = ExperimentConfig(exp_id="x", launcher="flux", workload="null",
                               n_nodes=4, seed=0)
        assert cfg.with_seed(3).seed == 3
        assert cfg.seed == 0

    def test_scaled(self):
        cfg = ExperimentConfig(exp_id="x", launcher="flux", workload="null",
                               n_nodes=4)
        assert cfg.scaled(1).waves == 1


class TestTable1:
    def test_all_seven_experiments_present(self):
        ids = {c.exp_id for c in table1_configs()}
        assert ids == {"srun", "flux_1", "flux_n", "dragon", "flux+dragon",
                       "impeccable_srun", "impeccable_flux"}

    def test_flux1_node_sweep(self):
        nodes = sorted(c.n_nodes for c in table1_configs()
                       if c.exp_id == "flux_1")
        assert nodes == [1, 4, 16, 64, 256, 1024]

    def test_fluxn_partition_sweep(self):
        pairs = {(c.n_nodes, c.n_partitions) for c in table1_configs()
                 if c.exp_id == "flux_n"}
        assert (64, 1) in pairs and (64, 64) in pairs
        assert (1024, 16) in pairs

    def test_dragon_node_sweep(self):
        nodes = sorted(c.n_nodes for c in table1_configs()
                       if c.exp_id == "dragon")
        assert nodes == [1, 4, 16, 64]

    def test_impeccable_scales(self):
        nodes = sorted(c.n_nodes for c in table1_configs()
                       if c.exp_id.startswith("impeccable"))
        assert nodes == [256, 256, 1024, 1024]

    def test_flux1_uses_360s_dummy(self):
        cfg = config_by_id("flux_1")
        assert cfg.duration == 360.0

    def test_dummy_variant(self):
        cfgs = table1_configs(null_workloads=False)
        srun = next(c for c in cfgs if c.exp_id == "srun")
        assert srun.workload == "dummy"

    def test_config_by_id_with_overrides(self):
        cfg = config_by_id("flux_n", n_nodes=16, n_partitions=2)
        assert cfg.n_nodes == 16
        assert cfg.n_partitions == 2

    def test_config_by_id_unknown(self):
        with pytest.raises(ConfigurationError):
            config_by_id("nonexistent")


class TestFrontierFullFamily:
    def test_weak_scaling_points(self):
        from repro.experiments.configs import (
            FRONTIER_SCALE_POINTS,
            frontier_full_configs,
        )

        cfgs = frontier_full_configs()
        assert [(c.n_nodes, c.n_partitions) for c in cfgs] == \
            list(FRONTIER_SCALE_POINTS)
        # fixed nodes/partition across the sweep (weak scaling)
        assert {c.n_nodes // c.n_partitions for c in cfgs} == {147}

    def test_full_machine_point(self):
        from repro.experiments.configs import frontier_full_configs

        full = frontier_full_configs()[-1]
        assert full.n_nodes == 9408
        assert full.n_partitions == 64
        assert full.launcher == "flux"
        assert full.workload == "null"
        # ~2.1M tasks at the default four waves
        assert full.n_nodes * 56 * full.waves == 2_107_392

    def test_scale_machinery_on_by_default(self):
        from repro.experiments.configs import frontier_full_configs

        for cfg in frontier_full_configs():
            assert cfg.bulk and cfg.lean

    def test_config_by_id_resolves_family(self):
        cfg = config_by_id("frontier_full", waves=1)
        assert cfg.exp_id == "frontier_full"
        assert cfg.waves == 1

    def test_table1_defaults_stay_legacy(self):
        for cfg in table1_configs():
            assert not cfg.bulk and not cfg.lean
