"""Harness-level tests for the IMPECCABLE experiment configurations."""

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.workloads import min_scalable_tasks


@pytest.fixture(scope="module")
def small_campaign():
    cfg = ExperimentConfig(exp_id="impeccable_flux", launcher="flux",
                           workload="impeccable", n_nodes=256,
                           generations=3)
    return run_experiment(cfg, keep_session=True)


class TestCampaignThroughHarness:
    def test_all_tasks_final_and_ok(self, small_campaign):
        r = small_campaign
        assert r.n_done == r.n_tasks
        assert r.n_failed == 0

    def test_task_shapes_span_paper_range(self, small_campaign):
        cores = [t.description.resources.cores for t in small_campaign.tasks]
        assert min(cores) >= 1
        assert max(cores) == 7168  # the paper's widest task
        gpus = [t.description.resources.gpus for t in small_campaign.tasks]
        assert max(gpus) >= 200

    def test_scalable_lower_bound_met(self, small_campaign):
        """The paper's consistency bound: >= 102 tasks per 128 nodes
        across the campaign's scalable work."""
        assert small_campaign.n_tasks >= min_scalable_tasks(256) * 3 / 12

    def test_trace_is_valid(self, small_campaign):
        from repro.analytics import assert_valid_trace

        session = small_campaign.session
        assert_valid_trace(session.profiler,
                           total_cores=session.cluster.total_cores)

    def test_metrics_populated(self, small_campaign):
        r = small_campaign
        assert r.makespan > 0
        assert 0 < r.utilization_cores <= 1
        assert 0 < r.utilization_gpus <= 1
        assert r.throughput.n_tasks == r.n_tasks

    def test_stage_workflows_all_present(self, small_campaign):
        workflows = {t.description.tags["workflow"]
                     for t in small_campaign.tasks}
        assert workflows == {"docking", "sst_train", "sst_inference",
                             "scoring_mmpbsa", "ampl", "esmacs",
                             "reinvent"}


class TestDeterminism:
    def test_same_seed_same_campaign(self):
        cfg = ExperimentConfig(exp_id="impeccable_flux", launcher="flux",
                               workload="impeccable", n_nodes=256,
                               generations=2, seed=5)
        a = run_experiment(cfg)
        b = run_experiment(cfg)
        assert a.n_tasks == b.n_tasks
        assert a.makespan == b.makespan
        assert a.utilization_cores == b.utilization_cores
