"""Edge cases of the seed-spec grammar and its CLI round-trip.

``parse_seed_list`` has three deliberate behaviors worth pinning on
their own: descending ranges are *errors* (silently yielding an empty
range — ``range(20, 6)`` — would drop seeds without a trace),
duplicates and overlapping ranges are *kept in order* (re-running a
seed is a deterministic no-op, useful for A/B timing), and
single-element ranges are just verbose singletons.  The CLI round-trip
then pins that member ordering follows the spec order end to end, not
a sorted or de-duplicated view.
"""

import pytest

from repro.ensemble import parse_seed_list, resolve_seeds, run_ensemble
from repro.exceptions import ConfigurationError
from repro.experiments.configs import config_by_id


class TestReversedRanges:
    @pytest.mark.parametrize("spec", ["20-5", "1-0", "9-8", "0,20-5,3"])
    def test_descending_range_is_rejected(self, spec):
        with pytest.raises(ConfigurationError, match="descending"):
            parse_seed_list(spec)

    def test_message_names_offending_entry(self):
        with pytest.raises(ConfigurationError, match="20-5"):
            parse_seed_list("1,20-5")


class TestOverlapsAndDuplicates:
    @pytest.mark.parametrize("spec, expected", [
        ("1-3,2-4", [1, 2, 3, 2, 3, 4]),      # overlapping ranges kept
        ("5,5,5", [5, 5, 5]),                 # explicit duplicates kept
        ("0-2,1", [0, 1, 2, 1]),              # range + repeated single
        ("7,1-3,7", [7, 1, 2, 3, 7]),         # order preserved verbatim
    ])
    def test_kept_in_spec_order(self, spec, expected):
        assert parse_seed_list(spec) == expected

    def test_resolve_keeps_duplicate_sequence(self):
        assert resolve_seeds([2, 2, 1]) == [2, 2, 1]

    def test_duplicate_seeds_run_as_separate_members(self):
        cfg = config_by_id("srun", n_nodes=1, waves=1)
        ens = run_ensemble(cfg, seeds="3,3")
        assert [m.seed for m in ens.members] == [3, 3]
        a, b = (m.result for m in ens.members)
        assert (a.makespan, a.throughput) == (b.makespan, b.throughput)


class TestSingleElementRanges:
    @pytest.mark.parametrize("spec, expected", [
        ("4-4", [4]),
        ("0-0", [0]),
        ("4-4,4", [4, 4]),
        ("1,3-3,5", [1, 3, 5]),
    ])
    def test_degenerate_range_is_singleton(self, spec, expected):
        assert parse_seed_list(spec) == expected


class TestCliRoundTrip:
    def test_member_ordering_follows_spec(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        out = tmp_path / "profiles"
        # Out-of-order spec with an overlap: exports must exist for
        # exactly the distinct seeds, and the run must succeed with
        # members in spec order (5, 0, 1, 2, 1).
        rc = main(["run", "srun", "--nodes", "1", "--waves", "1",
                   "--ensemble", "--seeds", "5,0-2,1",
                   "--profile-dir", str(out)])
        assert rc == 0
        assert "5" in capsys.readouterr().out  # seed count column
        assert sorted(p.name for p in out.iterdir()) == [
            "profile-seed0.jsonl", "profile-seed1.jsonl",
            "profile-seed2.jsonl", "profile-seed5.jsonl"]

    def test_spec_order_is_member_order(self):
        cfg = config_by_id("srun", n_nodes=1, waves=1)
        ens = run_ensemble(cfg, seeds="5,0-2,1")
        assert [m.seed for m in ens.members] == [5, 0, 1, 2, 1]
        assert ens.seeds == (5, 0, 1, 2, 1)
        assert [m.result.config.seed for m in ens.members] == [5, 0, 1, 2, 1]

    def test_reversed_range_fails_cli(self, capsys):
        from repro.experiments.__main__ import main

        rc = main(["run", "srun", "--ensemble", "--seeds", "20-5"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err
