"""Surrogate fidelity against the EXPERIMENTS.md measured tables.

The error-band contract documented there: most points within ±25 %,
all within roughly a factor of two.  srun and dragon are mean-value
exact (their pipelines are single-bottleneck), so they must sit in
the ±25 % band uncalibrated; Flux's bursty scheduler dynamics put the
raw bottleneck analysis in the factor-of-two band, and a single
1-node DES anchor calibration brings the whole Fig. 5(b) sweep into
±25 %.

The reference numbers are the committed measured values from
EXPERIMENTS.md (regenerating them at 16-64 nodes in a unit test would
cost minutes); the benchmarks that produced them run in CI.
"""

import pytest

from repro.ensemble import FluidSurrogate, SurrogatePrediction
from repro.exceptions import ConfigurationError
from repro.experiments.configs import config_by_id

#: EXPERIMENTS.md "measured avg" columns.
FIG5A_SRUN = {1: 139.5, 2: 91.2, 4: 52.6, 16: 13.2}
FIG5B_FLUX1 = {1: 20.2, 4: 40.6, 16: 81.0, 64: 157.6}
FIG5C_DRAGON = {4: 361.7, 16: 312.5, 64: 203.6}
FIG6_FLUXN = {(4, 4): 59.9, (16, 16): 213.0, (64, 16): 501.7,
              (64, 64): 614.1}


def test_srun_within_quarter_band():
    sur = FluidSurrogate()
    for n, measured in FIG5A_SRUN.items():
        p = sur.predict(config_by_id("srun", n_nodes=n))
        assert p.throughput == pytest.approx(measured, rel=0.25), n
        assert p.bottleneck == "slurmctld"


def test_dragon_within_quarter_band():
    sur = FluidSurrogate()
    for n, measured in FIG5C_DRAGON.items():
        p = sur.predict(config_by_id("dragon", n_nodes=n))
        assert p.throughput == pytest.approx(measured, rel=0.25), n
        assert p.bottleneck == "dragon-gs"


def test_flux_uncalibrated_within_factor_two():
    sur = FluidSurrogate()
    for n, measured in FIG5B_FLUX1.items():
        p = sur.predict(config_by_id("flux_1", n_nodes=n))
        assert 0.5 < p.throughput / measured < 2.0, n


def test_flux_calibrated_within_bands():
    """One cheap 1-node DES anchor tightens the whole Fig. 5(b) sweep
    into ±25 % and brings the multi-instance Fig. 6 grid (whose
    cross-instance scheduler dynamics the raw bottleneck analysis
    undershoots) into the factor-of-two band."""
    sur = FluidSurrogate()
    sur.calibrate([config_by_id("flux_1", n_nodes=1, waves=1)],
                  seeds=(0, 1, 2))
    assert 0.5 < sur.calibration["flux"] < 1.0
    for n, measured in FIG5B_FLUX1.items():
        p = sur.predict(config_by_id("flux_1", n_nodes=n))
        assert p.throughput == pytest.approx(measured, rel=0.25), n
    for (n, inst), measured in FIG6_FLUXN.items():
        p = sur.predict(config_by_id("flux_n", n_nodes=n,
                                     n_partitions=inst))
        assert 0.5 < p.throughput / measured < 2.0, (n, inst)


def test_srun_ceiling_utilization():
    """Fig. 4: the 112-srun ceiling caps 4-node dummy utilization at
    one half (112 of 224 cores busy)."""
    p = FluidSurrogate().predict(config_by_id("srun", workload="dummy"))
    assert p.bottleneck == "srun-ceiling"
    assert p.utilization_cores == pytest.approx(0.5, abs=0.02)


def test_null_workload_has_zero_utilization():
    p = FluidSurrogate().predict(config_by_id("srun"))
    assert p.utilization_cores == 0.0
    assert p.makespan > 0.0


def test_hybrid_within_factor_two():
    sur = FluidSurrogate()
    measured = {4: 80.7, 16: 246.4, 64: 552.3}   # Fig. 5(d)
    for n, m in measured.items():
        p = sur.predict(config_by_id("flux+dragon", n_nodes=n))
        assert 0.5 < p.throughput / m < 2.0, n


def test_tracks_latency_ablations():
    """No constants of its own: an ablated latency model moves the
    prediction the way it moves the DES."""
    from repro.platform.latency import FRONTIER_LATENCIES

    base = FluidSurrogate().predict(config_by_id("srun", n_nodes=4))
    halved = FluidSurrogate(latencies=FRONTIER_LATENCIES.with_overrides(
        srun_ctl_per_node=FRONTIER_LATENCIES.srun_ctl_per_node / 2))
    faster = halved.predict(config_by_id("srun", n_nodes=4))
    assert faster.throughput > base.throughput * 1.3


def test_unknown_launcher_rejected():
    with pytest.raises(ConfigurationError):
        FluidSurrogate().predict(config_by_id("prrte_16"))


def test_prediction_shape():
    p = FluidSurrogate().predict(config_by_id("srun"))
    assert isinstance(p, SurrogatePrediction)
    assert p.throughput > 0 and p.makespan > 0
