"""The ensemble engine's correctness contract: N-for-N identity.

An ensemble run of seeds ``[s1..sN]`` must be indistinguishable from
N independent sequential ``run_experiment`` calls — float-identical
metrics and byte-identical exported profiles — on both engines (the
vectorized fast paths for srun, single-instance flux and dragon, and
the generic replay).  These tests pin that contract the way the shard
suite pins merged traces.
"""

import hashlib

import pytest

from repro.analytics import save_profile
from repro.ensemble import run_ensemble, supports_vectorized
from repro.experiments.configs import ExperimentConfig, config_by_id
from repro.experiments.harness import run_experiment

SEEDS = [0, 3, 7]


def _independent(cfg, seed, tmp_path, tag):
    result = run_experiment(cfg.with_seed(seed), keep_session=True)
    path = tmp_path / f"{tag}.jsonl"
    save_profile(result.session.profiler, path)
    result.session.close()
    return result, hashlib.sha256(path.read_bytes()).hexdigest()


def _member_digest(member, tmp_path, tag):
    path = tmp_path / f"{tag}.jsonl"
    save_profile(member.profiler, path)
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _metrics(r):
    return (r.n_tasks, r.n_done, r.n_failed, r.throughput,
            r.utilization_cores, r.utilization_gpus, r.makespan,
            r.startup_overheads)


@pytest.mark.parametrize("overrides", [
    dict(),                                   # 4 nodes, null
    dict(workload="dummy"),                   # payload durations
    dict(n_nodes=1, waves=2),                 # multi-wave, 1 node
    dict(n_nodes=2, bulk=True),               # bulk submission path
])
def test_vectorized_matches_independent_runs(tmp_path, overrides):
    cfg = config_by_id("srun", waves=overrides.pop("waves", 1),
                       **overrides)
    assert supports_vectorized(cfg)
    ens = run_ensemble(cfg, seeds=SEEDS, keep_profiles=True)
    assert ens.engine == "vectorized"
    assert ens.seeds == tuple(SEEDS)
    for member in ens.members:
        ref, ref_digest = _independent(cfg, member.seed, tmp_path,
                                       f"ind-{member.seed}")
        assert _metrics(member.result) == _metrics(ref)
        assert member.result.config.seed == member.seed
        assert _member_digest(member, tmp_path,
                              f"ens-{member.seed}") == ref_digest


@pytest.mark.parametrize("exp_id, overrides", [
    ("flux_1", dict(n_nodes=1)),              # 1 node, null
    ("flux_1", dict(n_nodes=1, workload="dummy", waves=2)),
    # 2 nodes saturate the cycle loop's park/release path: grants stall
    # on core releases, not just on ingest arrivals.
    ("flux_1", dict(n_nodes=2, workload="dummy")),
    ("dragon", dict(n_nodes=1)),              # 1 node, null
    ("dragon", dict(n_nodes=2, workload="dummy")),
])
def test_vectorized_flux_dragon_match_independent_runs(tmp_path, exp_id,
                                                       overrides):
    import dataclasses

    workload = overrides.pop("workload", None)
    cfg = config_by_id(exp_id, waves=overrides.pop("waves", 1),
                       **overrides)
    if workload is not None:
        cfg = dataclasses.replace(cfg, workload=workload)
    assert supports_vectorized(cfg)
    ens = run_ensemble(cfg, seeds=[0, 5], keep_profiles=True)
    assert ens.engine == "vectorized"
    for member in ens.members:
        ref, ref_digest = _independent(
            cfg, member.seed, tmp_path, f"{exp_id}-ind-{member.seed}")
        assert _metrics(member.result) == _metrics(ref)
        assert _member_digest(
            member, tmp_path,
            f"{exp_id}-ens-{member.seed}") == ref_digest


def test_replay_matches_independent_runs(tmp_path):
    # Multi-instance flux interleaves shared session streams across
    # siblings, so flux_n stays on the generic replay engine.
    cfg = config_by_id("flux_n", n_nodes=2, n_partitions=2, waves=1)
    ens = run_ensemble(cfg, seeds=[0, 5], keep_profiles=True)
    assert ens.engine == "replay"
    for member in ens.members:
        ref, ref_digest = _independent(
            cfg, member.seed, tmp_path, f"flux_n-ind-{member.seed}")
        assert _metrics(member.result) == _metrics(ref)
        assert _member_digest(
            member, tmp_path,
            f"flux_n-ens-{member.seed}") == ref_digest


def test_forced_replay_equals_vectorized(tmp_path):
    cfg = config_by_id("srun", n_nodes=1, waves=1)
    replay = run_ensemble(cfg, seeds=[2, 4], keep_profiles=True,
                          engine="replay")
    fast = run_ensemble(cfg, seeds=[2, 4], keep_profiles=True,
                        engine="vectorized")
    assert replay.engine == "replay" and fast.engine == "vectorized"
    for mr, mf in zip(replay.members, fast.members):
        assert _metrics(mr.result) == _metrics(mf.result)
        assert (_member_digest(mr, tmp_path, f"r{mr.seed}")
                == _member_digest(mf, tmp_path, f"f{mf.seed}"))


def test_profile_dir_exports_are_byte_identical(tmp_path):
    cfg = config_by_id("srun", n_nodes=1, waves=1)
    ens = run_ensemble(cfg, seeds=[1, 6], profile_dir=str(tmp_path / "out"))
    for member in ens.members:
        assert member.profile_path is not None
        assert member.profiler is None  # not kept unless asked
        _, ref_digest = _independent(cfg, member.seed, tmp_path,
                                     f"ref-{member.seed}")
        with open(member.profile_path, "rb") as fh:
            assert hashlib.sha256(fh.read()).hexdigest() == ref_digest


def test_seed_grouping_is_irrelevant(tmp_path):
    """Members are independent: any partition of the seed list into
    ensemble calls yields the same per-seed bytes."""
    cfg = config_by_id("srun", n_nodes=1, waves=1)
    whole = run_ensemble(cfg, seeds=[0, 1, 2, 3], keep_profiles=True)
    split_a = run_ensemble(cfg, seeds=[0, 1], keep_profiles=True)
    split_b = run_ensemble(cfg, seeds=[2, 3], keep_profiles=True)
    parts = list(split_a.members) + list(split_b.members)
    for mw, mp in zip(whole.members, parts):
        assert mw.seed == mp.seed
        assert (_member_digest(mw, tmp_path, f"w{mw.seed}")
                == _member_digest(mp, tmp_path, f"p{mp.seed}"))


@pytest.mark.parametrize("overrides, reason", [
    (dict(launcher="flux", n_partitions=2), "multi-instance flux"),
    (dict(launcher="dragon", n_partitions=2), "multi-partition dragon"),
    (dict(workload="mixed"), "mixed workload"),
    (dict(shards=2), "sharded run"),
])
def test_vectorized_gating(overrides, reason):
    base = dict(exp_id="gate", launcher="srun", workload="null",
                n_nodes=4, n_partitions=1, duration=3.0, waves=1, seed=0)
    base.update(overrides)
    assert not supports_vectorized(ExperimentConfig(**base)), reason


@pytest.mark.parametrize("launcher, expected", [
    # Zero-cv latencies make flux/dragon event ties resolve by kernel
    # insertion order, which the closed-form recurrences don't model;
    # srun's strict-FIFO pipeline is immune to tie ordering.
    ("flux", False),
    ("dragon", False),
    ("srun", True),
])
def test_vectorized_gating_deterministic_latencies(launcher, expected):
    from repro.platform.latency import DETERMINISTIC_LATENCIES

    cfg = ExperimentConfig(exp_id="gate", launcher=launcher,
                           workload="null", n_nodes=1, n_partitions=1,
                           duration=3.0, waves=1, seed=0)
    assert supports_vectorized(cfg, DETERMINISTIC_LATENCIES) is expected


def test_vectorized_gating_faults():
    from repro.faults import FaultSpec

    cfg = config_by_id("srun", waves=1)
    assert supports_vectorized(cfg)
    import dataclasses

    faulty = dataclasses.replace(cfg, faults=FaultSpec(mtbf=100.0))
    assert not supports_vectorized(faulty)
