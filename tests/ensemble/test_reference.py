"""Cross-machine determinism: the committed ensemble reference digests.

An ensemble member's exported profile is specified to be a pure
function of (config, seed) — not of the engine, the seed grouping,
the host, or hash randomization.  This test regenerates the CI smoke
configuration (srun, 4 nodes, 1 wave, vectorized engine) and compares
the per-seed exports against the sha256 values committed in
``reference_digests.json`` — which are, by the N-for-N identity
contract, also the digests of independent sequential runs at those
seeds.

If an *intentional* model change shifts the trace, regenerate the
digests (command in the JSON) and commit them alongside the change.
"""

import hashlib
import json
from pathlib import Path

from repro.ensemble import run_ensemble

REFERENCE = Path(__file__).with_name("reference_digests.json")


def test_ensemble_reference_digests(tmp_path):
    expected = json.loads(REFERENCE.read_text())
    from repro.experiments.configs import config_by_id

    cfg = config_by_id("srun", waves=1)
    ens = run_ensemble(cfg, seeds=[0, 3, 7], profile_dir=str(tmp_path))
    assert ens.engine == "vectorized"
    for member in ens.members:
        digest = hashlib.sha256(
            Path(member.profile_path).read_bytes()).hexdigest()
        assert digest == expected[f"srun-4n-w1-seed{member.seed}"], (
            f"ensemble reference trace drifted at seed {member.seed} — "
            "if the model change is intentional, regenerate "
            "tests/ensemble/reference_digests.json")
