"""Cross-machine determinism: the committed ensemble reference digests.

An ensemble member's exported profile is specified to be a pure
function of (config, seed) — not of the engine, the seed grouping,
the host, or hash randomization.  This test regenerates the CI smoke
configurations (srun 4 nodes, flux_1 1 node, dragon 1 node — all one
wave, all on the vectorized engine) and compares the per-seed exports
against the sha256 values committed in ``reference_digests.json`` —
which are, by the N-for-N identity contract, also the digests of
independent sequential runs at those seeds.

If an *intentional* model change shifts the trace, regenerate the
digests (command in the JSON) and commit them alongside the change.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.ensemble import run_ensemble

REFERENCE = Path(__file__).with_name("reference_digests.json")


@pytest.mark.parametrize("exp_id, n_nodes, key", [
    ("srun", 4, "srun-4n-w1"),
    ("flux_1", 1, "flux_1-1n-w1"),
    ("dragon", 1, "dragon-1n-w1"),
])
def test_ensemble_reference_digests(tmp_path, exp_id, n_nodes, key):
    expected = json.loads(REFERENCE.read_text())
    from repro.experiments.configs import config_by_id

    cfg = config_by_id(exp_id, n_nodes=n_nodes, waves=1)
    ens = run_ensemble(cfg, seeds=[0, 3, 7], profile_dir=str(tmp_path))
    assert ens.engine == "vectorized"
    for member in ens.members:
        digest = hashlib.sha256(
            Path(member.profile_path).read_bytes()).hexdigest()
        assert digest == expected[f"{key}-seed{member.seed}"], (
            f"ensemble reference trace drifted at {key} seed "
            f"{member.seed} — if the model change is intentional, "
            "regenerate tests/ensemble/reference_digests.json")
