"""Unit tests for the ensemble engine plumbing: seed parsing,
defaults, parallel fan-out, aggregation, and the CLI surface."""

import json

import pytest

from repro.ensemble import (
    EnsembleResult,
    parse_seed_list,
    resolve_seeds,
    run_ensemble,
)
from repro.exceptions import ConfigurationError
from repro.experiments.configs import config_by_id
from repro.experiments.harness import run_repetitions


class TestSeedParsing:
    @pytest.mark.parametrize("spec, expected", [
        ("0", [0]),
        ("1,2,3", [1, 2, 3]),
        ("5-8", [5, 6, 7, 8]),
        ("1,2,5-7,20", [1, 2, 5, 6, 7, 20]),
        ("3,1-2", [3, 1, 2]),          # order preserved
        ("4,4", [4, 4]),               # duplicates kept
        (" 1 , 2 ", [1, 2]),           # whitespace tolerated
    ])
    def test_valid_specs(self, spec, expected):
        assert parse_seed_list(spec) == expected

    @pytest.mark.parametrize("spec", [
        "", ",", "1,,2", "a", "1-", "-3", "7-4", "1.5", "2,-1",
    ])
    def test_invalid_specs(self, spec):
        with pytest.raises(ConfigurationError):
            parse_seed_list(spec)

    def test_resolve_seeds(self):
        assert resolve_seeds("1-3") == [1, 2, 3]
        assert resolve_seeds([3, 1]) == [3, 1]
        assert resolve_seeds(range(2)) == [0, 1]
        with pytest.raises(ConfigurationError):
            resolve_seeds([])
        with pytest.raises(ConfigurationError):
            resolve_seeds([-1])


CFG = config_by_id("srun", n_nodes=1, waves=1)


class TestRunEnsemble:
    def test_default_seeds_match_run_repetitions(self):
        agg_reps = run_repetitions(CFG, n_reps=3)
        agg_ens = run_ensemble(CFG).aggregate()
        assert agg_ens.n_reps == 3
        assert agg_ens.throughput_avg == agg_reps.throughput_avg
        assert agg_ens.throughput_max == agg_reps.throughput_max
        assert agg_ens.utilization_avg == agg_reps.utilization_avg
        assert agg_ens.makespan_avg == agg_reps.makespan_avg

    def test_seed_spec_string(self):
        ens = run_ensemble(CFG, seeds="10,2-3")
        assert ens.seeds == (10, 2, 3)
        assert [m.result.config.seed for m in ens.members] == [10, 2, 3]

    def test_seeds_and_n_reps_conflict(self):
        with pytest.raises(ConfigurationError):
            run_ensemble(CFG, seeds=[1], n_reps=2)

    def test_bad_engine_name(self):
        with pytest.raises(ConfigurationError):
            run_ensemble(CFG, seeds=[0], engine="warp")

    def test_forced_vectorized_rejects_unsupported_config(self):
        # Multi-instance flux is the canonical ineligible config:
        # single-instance flux_1 and dragon qualify nowadays.
        flux_n = config_by_id("flux_n", n_nodes=2, n_partitions=2,
                              waves=1)
        with pytest.raises(ConfigurationError):
            run_ensemble(flux_n, seeds=[0], engine="vectorized")

    def test_parallel_equals_serial(self, tmp_path):
        serial = run_ensemble(CFG, seeds="0-5",
                              profile_dir=str(tmp_path / "ser"))
        par = run_ensemble(CFG, seeds="0-5", parallel=2,
                           profile_dir=str(tmp_path / "par"))
        assert par.n_workers == 2
        assert serial.seeds == par.seeds
        for ms, mp in zip(serial.members, par.members):
            assert ms.result.throughput == mp.result.throughput
            assert ms.result.makespan == mp.result.makespan
            with open(ms.profile_path, "rb") as a, \
                    open(mp.profile_path, "rb") as b:
                assert a.read() == b.read()

    def test_parallel_rejects_keep_profiles(self):
        with pytest.raises(ConfigurationError):
            run_ensemble(CFG, seeds="0-3", parallel=2, keep_profiles=True)

    def test_results_property_and_wall_accounting(self):
        ens = run_ensemble(CFG, seeds=[0, 1])
        assert isinstance(ens, EnsembleResult)
        assert len(ens.results) == 2
        assert ens.wall_seconds > 0
        assert ens.wall_seconds_per_seed == pytest.approx(
            ens.wall_seconds / 2)
        for member in ens.members:
            assert member.result.wall_seconds == pytest.approx(
                ens.wall_seconds_per_seed)

    def test_harness_reexport(self):
        from repro.experiments import run_ensemble as harness_run_ensemble

        ens = harness_run_ensemble(CFG, seeds=[0])
        assert ens.engine == "vectorized"


class TestRunRepetitionsSeeds:
    def test_explicit_seeds_equal_derived(self):
        derived = run_repetitions(CFG, n_reps=2)
        explicit = run_repetitions(CFG, seeds=[CFG.seed, CFG.seed + 1])
        assert explicit.n_reps == 2
        assert explicit.throughput_avg == derived.throughput_avg
        assert explicit.makespan_avg == derived.makespan_avg

    def test_seed_spec_string(self):
        agg = run_repetitions(CFG, seeds="5-6")
        assert [r.config.seed for r in agg.results] == [5, 6]


class TestCli:
    def test_run_ensemble_cli(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        out = tmp_path / "profiles"
        rc = main(["run", "srun", "--nodes", "1", "--waves", "1",
                   "--ensemble", "--seeds", "0-2",
                   "--profile-dir", str(out)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "vectorized" in printed
        assert sorted(p.name for p in out.iterdir()) == [
            "profile-seed0.jsonl", "profile-seed1.jsonl",
            "profile-seed2.jsonl"]
        # every exported line is valid JSON (well-formed profile)
        first = (out / "profile-seed0.jsonl").read_text().splitlines()
        assert json.loads(first[0])["format"] == "repro-profile"

    def test_run_seeds_without_ensemble(self, capsys):
        from repro.experiments.__main__ import main

        rc = main(["run", "srun", "--nodes", "1", "--waves", "1",
                   "--seeds", "0,1"])
        assert rc == 0
        assert "avg tasks/s" in capsys.readouterr().out

    def test_bad_seed_spec_is_user_error(self, capsys):
        from repro.experiments.__main__ import main

        rc = main(["run", "srun", "--ensemble", "--seeds", "7-3"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err
