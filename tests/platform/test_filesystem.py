"""Tests for the shared filesystem model and staging integration."""

import pytest

from repro.exceptions import ConfigurationError
from repro.platform import SharedFilesystem
from repro.sim import Environment


class TestValidation:
    def test_bad_params(self, env):
        with pytest.raises(ConfigurationError):
            SharedFilesystem(env, aggregate_bandwidth=0)
        with pytest.raises(ConfigurationError):
            SharedFilesystem(env, access_latency=-1)
        with pytest.raises(ConfigurationError):
            SharedFilesystem(env, max_streams=0)

    def test_negative_size(self, env):
        fs = SharedFilesystem(env)
        with pytest.raises(ConfigurationError):
            fs.transfer_time(-1, 1)


class TestTransfers:
    def test_time_scales_with_size(self, env):
        fs = SharedFilesystem(env, aggregate_bandwidth=1e9,
                              access_latency=0.0)
        assert fs.transfer_time(1e9, 1) == pytest.approx(1.0)
        assert fs.transfer_time(2e9, 1) == pytest.approx(2.0)

    def test_contention_slows_transfers(self, env):
        fs = SharedFilesystem(env, aggregate_bandwidth=1e9,
                              access_latency=0.0)
        assert fs.transfer_time(1e9, 4) == pytest.approx(4.0)

    def test_single_transfer_advances_clock(self, env):
        fs = SharedFilesystem(env, aggregate_bandwidth=1e9,
                              access_latency=0.5)

        def mover(env, fs):
            yield from fs.transfer(1e9)

        env.run(env.process(mover(env, fs)))
        assert env.now == pytest.approx(1.5)
        assert fs.n_transfers == 1
        assert fs.bytes_moved == 1e9

    def test_concurrent_transfers_share_bandwidth(self, env):
        fs = SharedFilesystem(env, aggregate_bandwidth=1e9,
                              access_latency=0.0)

        def mover(env, fs):
            yield from fs.transfer(1e9)

        procs = [env.process(mover(env, fs)) for _ in range(4)]
        env.run(env.all_of(procs))
        # Four concurrent 1 GB transfers at 1 GB/s aggregate: the later
        # starters see more contention; total well beyond 1 s.
        assert env.now > 2.0
        assert fs.n_transfers == 4

    def test_stream_cap_serializes_excess(self, env):
        fs = SharedFilesystem(env, aggregate_bandwidth=1e9,
                              access_latency=0.0, max_streams=2)

        def mover(env, fs):
            yield from fs.transfer(1e8)

        procs = [env.process(mover(env, fs)) for _ in range(6)]
        env.run(env.all_of(procs))
        assert fs.n_transfers == 6


class TestStagingIntegration:
    def test_bigger_items_stage_longer(self):
        from repro.core import (
            PartitionSpec, PilotDescription, Session, TaskDescription)
        from repro.platform import generic

        spans = {}
        for mb in (1.0, 2000.0):
            session = Session(cluster=generic(4, 8, 2), seed=91)
            pmgr, tmgr = session.pilot_manager(), session.task_manager()
            pilot = pmgr.submit_pilots(PilotDescription(
                nodes=4, partitions=(PartitionSpec("flux"),)))
            tmgr.add_pilot(pilot)
            task = tmgr.submit_tasks(TaskDescription(
                duration=1.0, input_staging=2, staging_item_mb=mb))
            session.run(tmgr.wait_tasks())
            assert task.succeeded
            spans[mb] = session.now
            session.close()
        assert spans[2000.0] > spans[1.0]

    def test_bytes_accounted(self):
        from repro.core import (
            PartitionSpec, PilotDescription, Session, TaskDescription)
        from repro.platform import generic

        session = Session(cluster=generic(4, 8, 2), seed=92)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("flux"),)))
        tmgr.add_pilot(pilot)
        tmgr.submit_tasks(TaskDescription(
            duration=1.0, input_staging=3, output_staging=1,
            staging_item_mb=10.0))
        session.run(tmgr.wait_tasks())
        expected = 4 * 10.0 * 1024 * 1024
        assert session.filesystem.bytes_moved == pytest.approx(expected)
        assert pilot.agent.stager_in.bytes_staged == pytest.approx(
            3 * 10.0 * 1024 * 1024)
