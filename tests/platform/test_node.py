"""Unit tests for slot-level node bookkeeping."""

import pytest

from repro.exceptions import ResourceError
from repro.platform import Node


class TestConstruction:
    def test_defaults(self):
        node = Node(0, n_cores=8, n_gpus=2)
        assert node.free_cores == 8
        assert node.free_gpus == 2
        assert node.is_idle

    def test_invalid_cores(self):
        with pytest.raises(ResourceError):
            Node(0, n_cores=0)

    def test_invalid_gpus(self):
        with pytest.raises(ResourceError):
            Node(0, n_cores=1, n_gpus=-1)

    def test_auto_name(self):
        assert Node(3, 4).name == "node00003"


class TestAllocate:
    def test_allocate_reduces_free(self):
        node = Node(0, 8, 2)
        pl = node.allocate(3, 1)
        assert node.free_cores == 5
        assert node.free_gpus == 1
        assert pl.cores == 3
        assert pl.gpus == 1

    def test_slots_are_disjoint(self):
        node = Node(0, 8)
        p1 = node.allocate(4)
        p2 = node.allocate(4)
        assert set(p1.core_slots).isdisjoint(p2.core_slots)

    def test_over_allocate_raises(self):
        node = Node(0, 4)
        node.allocate(3)
        with pytest.raises(ResourceError):
            node.allocate(2)

    def test_negative_raises(self):
        with pytest.raises(ResourceError):
            Node(0, 4).allocate(-1)

    def test_can_fit(self):
        node = Node(0, 4, 1)
        assert node.can_fit(4, 1)
        node.allocate(2)
        assert node.can_fit(2, 1)
        assert not node.can_fit(3, 0)


class TestRelease:
    def test_release_restores_capacity(self):
        node = Node(0, 8, 2)
        pl = node.allocate(5, 2)
        node.release(pl)
        assert node.is_idle

    def test_double_free_raises(self):
        node = Node(0, 8)
        pl = node.allocate(2)
        node.release(pl)
        with pytest.raises(ResourceError):
            node.release(pl)

    def test_wrong_node_release_raises(self):
        a, b = Node(0, 8), Node(1, 8)
        pl = a.allocate(2)
        with pytest.raises(ResourceError):
            b.release(pl)

    def test_released_slots_reusable(self):
        node = Node(0, 2)
        p1 = node.allocate(2)
        node.release(p1)
        p2 = node.allocate(2)
        assert set(p2.core_slots) == {0, 1}
