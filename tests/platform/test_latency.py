"""Unit tests for the latency calibration model."""

import dataclasses

import pytest

from repro.platform import (
    DETERMINISTIC_LATENCIES,
    FRONTIER_LATENCIES,
    LatencyModel,
)


class TestModel:
    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            FRONTIER_LATENCIES.srun_ceiling = 1

    def test_with_overrides(self):
        custom = FRONTIER_LATENCIES.with_overrides(srun_ceiling=999)
        assert custom.srun_ceiling == 999
        assert FRONTIER_LATENCIES.srun_ceiling == 112
        assert custom.flux_startup_mean == FRONTIER_LATENCIES.flux_startup_mean

    def test_deterministic_variant_has_no_noise(self):
        det = DETERMINISTIC_LATENCIES
        assert det.srun_cv == 0.0
        assert det.flux_cycle_cv == 0.0
        assert det.flux_load_cv == 0.0
        assert det.dragon_cv == 0.0

    def test_calibration_anchors(self):
        """The constants encode the paper's headline anchors."""
        lat = FRONTIER_LATENCIES
        # Frontier's measured srun ceiling.
        assert lat.srun_ceiling == 112
        # srun single-node launch rate ~ 152 tasks/s.
        rate_1n = 1.0 / (lat.srun_ctl_base + lat.srun_ctl_per_node
                         + lat.srun_ctl_per_node15)
        assert 130 <= rate_1n <= 160
        # Flux bootstrap ~20 s, Dragon ~9 s (Fig. 7).
        assert 18 <= lat.flux_startup_mean <= 22
        assert 8 <= lat.dragon_startup_mean <= 10
        # Single-lane Flux spawn rate ~28 tasks/s (Fig. 5b at 1 node).
        assert lat.flux_lane_rate == pytest.approx(28.0)
        # Dragon centralized exec dispatch ~380 tasks/s at small scale.
        assert 1.0 / lat.dragon_gs_exec_cost == pytest.approx(380, rel=0.02)
