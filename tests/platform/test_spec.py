"""Unit tests for ResourceSpec."""

import pytest

from repro.exceptions import ResourceError
from repro.platform import ResourceSpec


class TestValidation:
    def test_defaults(self):
        spec = ResourceSpec()
        assert spec.cores == 1
        assert spec.gpus == 0

    def test_negative_cores(self):
        with pytest.raises(ResourceError):
            ResourceSpec(cores=-1)

    def test_negative_gpus(self):
        with pytest.raises(ResourceError):
            ResourceSpec(gpus=-1)

    def test_zero_everything(self):
        with pytest.raises(ResourceError):
            ResourceSpec(cores=0, gpus=0)

    def test_gpu_only_allowed(self):
        spec = ResourceSpec(cores=0, gpus=2)
        assert spec.gpus == 2

    def test_negative_memory(self):
        with pytest.raises(ResourceError):
            ResourceSpec(mem_gb=-1.0)

    def test_hashable_value_object(self):
        assert ResourceSpec(cores=2) == ResourceSpec(cores=2)
        assert hash(ResourceSpec(cores=2)) == hash(ResourceSpec(cores=2))


class TestNodesRequired:
    def test_single_core(self):
        assert ResourceSpec(cores=1).nodes_required(56, 8) == 1

    def test_exact_node(self):
        assert ResourceSpec(cores=56).nodes_required(56, 8) == 1

    def test_multi_node_rounds_up(self):
        assert ResourceSpec(cores=57).nodes_required(56, 8) == 2
        assert ResourceSpec(cores=7168).nodes_required(56, 8) == 128

    def test_gpu_driven(self):
        assert ResourceSpec(cores=1, gpus=16).nodes_required(56, 8) == 2

    def test_gpus_on_gpuless_nodes_raises(self):
        with pytest.raises(ResourceError):
            ResourceSpec(cores=1, gpus=1).nodes_required(56, 0)

    def test_fits_node(self):
        assert ResourceSpec(cores=56, gpus=8).fits_node(56, 8)
        assert not ResourceSpec(cores=57).fits_node(56, 8)
        assert not ResourceSpec(cores=1, gpus=9).fits_node(56, 8)
