"""Unit tests for Cluster and Allocation."""

import pytest

from repro.exceptions import AllocationError
from repro.platform import Allocation, Cluster, ResourceSpec, frontier, generic


class TestCluster:
    def test_frontier_profile(self):
        cluster = frontier(16)
        assert cluster.cores_per_node == 56
        assert cluster.gpus_per_node == 8
        assert cluster.n_nodes == 16
        assert cluster.total_cores == 16 * 56

    def test_empty_cluster_raises(self):
        with pytest.raises(AllocationError):
            Cluster("x", n_nodes=0, cores_per_node=4)

    def test_allocate_nodes(self):
        cluster = generic(8)
        alloc = cluster.allocate_nodes(4)
        assert alloc.n_nodes == 4
        assert alloc.total_cores == 32

    def test_allocations_are_disjoint(self):
        cluster = generic(8)
        a = cluster.allocate_nodes(4)
        b = cluster.allocate_nodes(4)
        assert {n.index for n in a.nodes}.isdisjoint(
            n.index for n in b.nodes)

    def test_over_allocation_raises(self):
        cluster = generic(4)
        cluster.allocate_nodes(3)
        with pytest.raises(AllocationError):
            cluster.allocate_nodes(2)

    def test_release_all_resets(self):
        cluster = generic(4)
        cluster.allocate_nodes(4)
        cluster.release_all()
        assert cluster.allocate_nodes(4).n_nodes == 4

    def test_zero_nodes_raises(self):
        with pytest.raises(AllocationError):
            generic(4).allocate_nodes(0)


class TestPartition:
    def test_even_split(self):
        alloc = generic(8).allocate_nodes(8)
        parts = alloc.partition(4)
        assert [p.n_nodes for p in parts] == [2, 2, 2, 2]

    def test_uneven_split(self):
        alloc = generic(8).allocate_nodes(7)
        parts = alloc.partition(3)
        assert [p.n_nodes for p in parts] == [3, 2, 2]

    def test_partitions_disjoint_and_complete(self):
        alloc = generic(8).allocate_nodes(8)
        parts = alloc.partition(3)
        indices = [n.index for p in parts for n in p.nodes]
        assert sorted(indices) == [n.index for n in alloc.nodes]
        assert len(set(indices)) == len(indices)

    def test_more_partitions_than_nodes_raises(self):
        alloc = generic(4).allocate_nodes(2)
        with pytest.raises(AllocationError):
            alloc.partition(3)

    def test_split_nodes(self):
        alloc = generic(8).allocate_nodes(8)
        a, b = alloc.split_nodes(3)
        assert a.n_nodes == 3 and b.n_nodes == 5

    def test_split_nodes_bounds(self):
        alloc = generic(8).allocate_nodes(4)
        with pytest.raises(AllocationError):
            alloc.split_nodes(4)
        with pytest.raises(AllocationError):
            alloc.split_nodes(0)


class TestPlacement:
    def test_single_core(self):
        alloc = generic(2).allocate_nodes(2)
        pls = alloc.try_place(ResourceSpec(cores=1))
        assert pls is not None
        assert sum(p.cores for p in pls) == 1
        assert alloc.free_cores == 15

    def test_multi_node_packing(self):
        alloc = generic(4).allocate_nodes(4)  # 8 cores/node
        pls = alloc.try_place(ResourceSpec(cores=20))
        assert pls is not None
        assert sum(p.cores for p in pls) == 20
        assert len(pls) == 3

    def test_does_not_fit_returns_none_and_rolls_back(self):
        alloc = generic(2).allocate_nodes(2)
        before = alloc.free_cores
        assert alloc.try_place(ResourceSpec(cores=100)) is None
        assert alloc.free_cores == before

    def test_gpu_placement(self):
        alloc = generic(2, gpus_per_node=2).allocate_nodes(2)
        pls = alloc.try_place(ResourceSpec(cores=1, gpus=3))
        assert pls is not None
        assert sum(p.gpus for p in pls) == 3

    def test_exclusive_nodes(self):
        alloc = generic(4).allocate_nodes(4)
        pls = alloc.try_place(ResourceSpec(cores=9, exclusive_nodes=True))
        assert pls is not None
        # 9 cores at 8 cpn exclusive -> two whole nodes.
        assert sum(p.cores for p in pls) == 16

    def test_exclusive_skips_busy_nodes(self):
        alloc = generic(3).allocate_nodes(3)
        alloc.try_place(ResourceSpec(cores=1))  # dirty the first node
        pls = alloc.try_place(ResourceSpec(cores=8, exclusive_nodes=True))
        assert pls is not None
        assert pls[0].node_index != alloc.nodes[0].index

    def test_release_restores(self):
        alloc = generic(2).allocate_nodes(2)
        pls = alloc.try_place(ResourceSpec(cores=10))
        alloc.release(pls)
        assert alloc.free_cores == alloc.total_cores

    def test_fragmentation_respected(self):
        # 2 nodes x 8 cores; take 5 on each: a 6-core task cannot fit
        # in the 3+3 fragments as a single-node request would, but the
        # packer spreads it across nodes.
        alloc = generic(2).allocate_nodes(2)
        alloc.nodes[0].allocate(5)
        alloc.nodes[1].allocate(5)
        pls = alloc.try_place(ResourceSpec(cores=6))
        assert pls is not None
        assert len(pls) == 2

    def test_empty_allocation_raises(self):
        cluster = generic(2)
        with pytest.raises(AllocationError):
            Allocation(cluster, [])
