"""Tests for the simulated MPI communicator."""

import pytest

from repro.exceptions import ConfigurationError
from repro.mpi import CommParams, SimComm, allreduce_time
from repro.sim import Environment


class TestConstruction:
    def test_validation(self, env):
        with pytest.raises(ConfigurationError):
            SimComm(env, size=0)
        with pytest.raises(ConfigurationError):
            SimComm(env, size=4, n_nodes=8)

    def test_spans_nodes(self, env):
        assert not SimComm(env, size=8, n_nodes=1).spans_nodes
        assert SimComm(env, size=8, n_nodes=2).spans_nodes


class TestWholeJobCollectives:
    def test_allreduce_advances_clock(self, env):
        comm = SimComm(env, size=16, n_nodes=2)

        def job(env, comm):
            yield from comm.allreduce(1e9)

        env.run(env.process(job(env, comm)))
        expected = allreduce_time(comm.params, 16, 1e9, spans_nodes=True)
        assert env.now == pytest.approx(expected)
        assert comm.n_collectives == 1

    def test_compute_comm_cycle(self, env):
        comm = SimComm(env, size=8, n_nodes=2)

        def member(env, comm, rounds):
            for _ in range(rounds):
                yield env.timeout(1.0)        # compute
                yield from comm.allreduce(8e6)  # gradient exchange

        env.run(env.process(member(env, comm, rounds=10)))
        assert env.now > 10.0  # compute plus nonzero comm
        assert comm.n_collectives == 10

    def test_single_rank_is_free(self, env):
        comm = SimComm(env, size=1)

        def job(env, comm):
            yield from comm.barrier()
            yield from comm.bcast(1e9)

        env.run(env.process(job(env, comm)))
        assert env.now == 0.0


class TestRankBarrier:
    def test_all_ranks_release_together(self, env):
        comm = SimComm(env, size=4, n_nodes=2)
        releases = []

        def rank(env, comm, i):
            yield env.timeout(float(i))  # staggered arrivals
            yield from comm.barrier_sync()
            releases.append((i, env.now))

        for i in range(4):
            env.process(rank(env, comm, i))
        env.run()
        times = {t for _, t in releases}
        assert len(times) == 1          # everyone released together
        assert times.pop() >= 3.0       # after the slowest arrival

    def test_barrier_reusable_across_iterations(self, env):
        comm = SimComm(env, size=3)
        log = []

        def rank(env, comm, i):
            for it in range(3):
                yield env.timeout(0.5 + 0.1 * i)
                yield from comm.barrier_sync()
                log.append((it, i, env.now))

        for i in range(3):
            env.process(rank(env, comm, i))
        env.run()
        assert len(log) == 9
        # Within each iteration, all ranks share a release time.
        for it in range(3):
            times = {t for j, i, t in log if j == it}
            assert len(times) == 1

    def test_collective_counter(self, env):
        comm = SimComm(env, size=2)

        def rank(env, comm):
            yield from comm.barrier_sync()

        env.process(rank(env, comm))
        env.process(rank(env, comm))
        env.run()
        assert comm.n_collectives == 1
