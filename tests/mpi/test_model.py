"""Tests for the alpha-beta collective cost model."""

import pytest

from repro.exceptions import ConfigurationError
from repro.mpi import (
    CommParams,
    FRONTIER_FABRIC,
    allreduce_time,
    alltoall_time,
    barrier_time,
    bcast_time,
    ptp_time,
)


class TestParams:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CommParams(intra_node_latency=-1)
        with pytest.raises(ConfigurationError):
            CommParams(bandwidth=0)

    def test_alpha_by_locality(self):
        p = FRONTIER_FABRIC
        assert p.alpha(spans_nodes=True) > p.alpha(spans_nodes=False)


class TestFormulas:
    def test_single_rank_collectives_free(self):
        p = FRONTIER_FABRIC
        assert barrier_time(p, 1) == 0.0
        assert bcast_time(p, 1, 1e6) == 0.0
        assert allreduce_time(p, 1, 1e6) == 0.0
        assert alltoall_time(p, 1, 1e6) == 0.0

    def test_ptp_alpha_beta(self):
        p = CommParams(inter_node_latency=2e-6, bandwidth=25e9)
        assert ptp_time(p, 25e9) == pytest.approx(1.0 + 2e-6)

    def test_barrier_log_rounds(self):
        p = FRONTIER_FABRIC
        assert barrier_time(p, 2) == pytest.approx(p.inter_node_latency)
        assert barrier_time(p, 8) == pytest.approx(3 * p.inter_node_latency)
        assert barrier_time(p, 9) == pytest.approx(4 * p.inter_node_latency)

    def test_allreduce_bandwidth_term(self):
        p = CommParams(inter_node_latency=0.0, bandwidth=1e9)
        # 2 * (p-1)/p * n/B with alpha = 0.
        assert allreduce_time(p, 4, 1e9) == pytest.approx(2 * 0.75)

    def test_monotone_in_ranks(self):
        p = FRONTIER_FABRIC
        times = [allreduce_time(p, k, 1e6) for k in (2, 4, 16, 256)]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_monotone_in_bytes(self):
        p = FRONTIER_FABRIC
        times = [bcast_time(p, 8, n) for n in (1e3, 1e6, 1e9)]
        assert times[0] < times[1] < times[2]

    def test_intra_node_cheaper(self):
        p = FRONTIER_FABRIC
        assert (barrier_time(p, 8, spans_nodes=False)
                < barrier_time(p, 8, spans_nodes=True))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            barrier_time(FRONTIER_FABRIC, 0)
        with pytest.raises(ConfigurationError):
            bcast_time(FRONTIER_FABRIC, 4, -1)
