"""Sharded-run determinism: the whole point of the canonical merge.

The contracts pinned here:

* ``shards=None`` / hostless engines are *byte-exact* against the
  sequential path (sharding requested but nothing shardable — srun,
  dragon, single-instance flux);
* a sharded flux run is a pure function of the seed: process workers
  vs inline execution, 2 vs 3 shards, repeat runs — all produce the
  identical merged profile, with faults and observability riding
  along;
* per-instance scoped RNG draws are independent of shard grouping.
"""

import hashlib

import pytest

from repro.experiments.configs import DEFAULT_FAULTS, ExperimentConfig
from repro.experiments.harness import run_experiment
from repro.sim import RngStreams, ScopedRng


def _digest(cfg, tmp_path, tag, **kw):
    from repro.analytics import save_profile

    result = run_experiment(cfg, keep_session=True, **kw)
    path = tmp_path / f"{tag}.jsonl"
    save_profile(result.session.profiler, path)
    digest = hashlib.sha256(path.read_bytes()).hexdigest()
    result.session.close()
    return digest, result


FLUX = dict(exp_id="shard_det", launcher="flux", workload="null",
            n_nodes=16, n_partitions=4, duration=0.0, waves=1, seed=11)


class TestShardedFluxDeterminism:
    def test_process_inline_grouping_and_repeat_agree(self, tmp_path):
        d2, r2 = _digest(ExperimentConfig(shards=2, **FLUX), tmp_path, "p2")
        d2b, _ = _digest(ExperimentConfig(shards=2, **FLUX), tmp_path, "p2b")
        din, rin = _digest(ExperimentConfig(shards=2, **FLUX), tmp_path,
                           "inl", shard_inline=True)
        d3, r3 = _digest(ExperimentConfig(shards=3, **FLUX), tmp_path, "p3")
        assert d2 == d2b, "sharded run is not repeatable"
        assert d2 == din, "process workers drifted from inline execution"
        assert d2 == d3, "trace depends on the shard grouping"
        assert r2.n_shards == 2 and rin.n_shards == 2 and r3.n_shards == 3
        assert len(r2.shard_peak_rss_mb) == 2
        assert all(rss > 0 for rss in r2.shard_peak_rss_mb)

    def test_all_work_completes(self, tmp_path):
        _, res = _digest(ExperimentConfig(shards=2, **FLUX), tmp_path, "ok")
        assert res.n_done == res.n_tasks > 0

    def test_faults_and_observability_ride_along(self, tmp_path):
        cfg = ExperimentConfig(shards=2, faults=DEFAULT_FAULTS, **{
            **FLUX, "waves": 2})
        dp, rp = _digest(cfg, tmp_path, "fp", observe=True)
        di, _ = _digest(cfg, tmp_path, "fi", observe=True,
                        shard_inline=True)
        dq, _ = _digest(cfg, tmp_path, "fq")
        assert dp == di, "faulty sharded run not inline-equal"
        assert dp == dq, "observability perturbed the sharded trace"
        assert rp.faults is not None
        assert sum(rp.faults.injected.values()) > 0

    def test_shards_clamp_to_instances(self, tmp_path):
        # 64 shards over 4 instances: the engine clamps, the run works.
        _, res = _digest(ExperimentConfig(shards=64, **FLUX), tmp_path,
                         "clamp", shard_inline=True)
        assert res.n_shards == 4
        assert res.n_done == res.n_tasks


class TestHostlessEnginesAreByteExact:
    """``shards=N`` with nothing to shard must take the sequential
    path's trace verbatim."""

    @pytest.mark.parametrize("launcher,parts", [
        ("srun", 1),
        ("dragon", 2),
        ("flux", 1),       # single instance: engine.wants(1) is False
    ])
    def test_trace_identical_to_sequential(self, tmp_path, launcher, parts):
        base = dict(exp_id="hostless", launcher=launcher, workload="null",
                    n_nodes=2, n_partitions=parts, duration=0.0, waves=1,
                    seed=5)
        plain, _ = _digest(ExperimentConfig(**base), tmp_path, "plain")
        sharded, res = _digest(ExperimentConfig(shards=2, **base), tmp_path,
                               "sharded")
        assert plain == sharded, (
            f"{launcher}: hostless engine perturbed the trace")
        assert res.n_shards == 0


class TestScopedRng:
    def test_draws_are_scope_pure(self):
        a = ScopedRng(RngStreams(3), "agent.0.flux.001")
        b = ScopedRng(RngStreams(3), "agent.0.flux.001")
        c = ScopedRng(RngStreams(3), "agent.0.flux.002")
        assert a.lognormal_latency("flux.cycle", 0.1) == \
            b.lognormal_latency("flux.cycle", 0.1)
        assert a.uniform("x", 0, 1) != c.uniform("x", 0, 1)

    def test_scope_prefix_matches_shared_stream(self):
        base = RngStreams(9)
        scoped = ScopedRng(RngStreams(9), "inst")
        assert scoped.lognormal_latency("lat", 0.2) == \
            base.lognormal_latency("inst/lat", 0.2)

    def test_batch_matches_scalar_stream_shape(self):
        scoped = ScopedRng(RngStreams(1), "i")
        vals = scoped.lognormal_latency_batch("l", 0.1, n=4)
        assert len(vals) == 4 and all(v > 0 for v in vals)
