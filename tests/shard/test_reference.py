"""Cross-machine determinism: the committed reference digest.

A sharded run is specified to be a pure function of the seed — not of
the host, core count, worker scheduling, or hash randomization.  This
test regenerates the CI smoke configuration (flux_n, 64 nodes, 4
partitions, 1 wave, seed 0, 2 shards) and compares the exported merged
profile against the sha256 committed in ``reference_digests.json``.

If an *intentional* model change shifts the trace, regenerate the
digest (command in the JSON) and commit it alongside the change.
"""

import hashlib
import json
from pathlib import Path

from repro.analytics import save_profile
from repro.experiments.configs import config_by_id
from repro.experiments.harness import run_experiment

REFERENCE = Path(__file__).with_name("reference_digests.json")


def test_sharded_reference_digest(tmp_path):
    expected = json.loads(REFERENCE.read_text())[
        "flux_n-64n-4p-w1-s0-shards2"]
    cfg = config_by_id("flux_n", n_nodes=64, n_partitions=4, waves=1,
                       seed=0, shards=2)
    result = run_experiment(cfg, keep_session=True)
    path = tmp_path / "profile.jsonl"
    save_profile(result.session.profiler, path)
    result.session.close()
    digest = hashlib.sha256(path.read_bytes()).hexdigest()
    assert digest == expected, (
        "sharded reference trace drifted — if the model change is "
        "intentional, regenerate tests/shard/reference_digests.json")
