"""Wire protocol: everything crossing the pipe must pickle cleanly."""

import pickle

from repro.platform.latency import FRONTIER_LATENCIES
from repro.shard.protocol import (
    CancelMsg,
    CrashMsg,
    ErrorMsg,
    FailNodeMsg,
    InstanceSpec,
    JobReport,
    RecoverNodeMsg,
    RestartMsg,
    ShardConfig,
    ShardStats,
    ShutdownMsg,
    SpecMsg,
    StartMsg,
    StateReport,
    SubmitMsg,
    WindowResult,
)


def _roundtrip(msg):
    clone = pickle.loads(pickle.dumps(msg))
    assert clone == msg
    return clone


def test_messages_roundtrip():
    for msg in [
        StartMsg(1.0),
        SubmitMsg(1.5, 3, 7, "agent.0.flux.003.job.000001"),
        CancelMsg(2.0, 3, "agent.0.flux.003.job.000001", "canceled by RP"),
        CrashMsg(3.0, 0, "backend crash"),
        RestartMsg(4.0, 0),
        ShutdownMsg(5.0, 1),
        FailNodeMsg(6.0, 12),
        RecoverNodeMsg(7.0, 12),
        StateReport(2, "READY"),
        ErrorMsg("ValueError", "boom", "trace..."),
    ]:
        _roundtrip(msg)


def test_job_report_sorts_by_time_instance_seq():
    reports = [
        JobReport(2.0, 0, 0, "j", "flux.job.start", {}),
        JobReport(1.0, 1, 0, "j", "flux.job.start", {}),
        JobReport(1.0, 0, 1, "j", "flux.job.finish", {}),
        JobReport(1.0, 0, 0, "j", "flux.job.start", {}),
    ]
    ordered = sorted(reports)
    assert [(r.time, r.instance, r.seq) for r in ordered] == [
        (1.0, 0, 0), (1.0, 0, 1), (1.0, 1, 0), (2.0, 0, 0)]


def test_shard_config_roundtrips_with_real_payloads():
    cfg = ShardConfig(
        shard_index=1, seed=42, start_time=0.25,
        latencies=FRONTIER_LATENCIES, cluster_name="frontier",
        cores_per_node=56, gpus_per_node=8, mem_gb_per_node=512.0,
        instances=(InstanceSpec(0, "agent.0.flux.000", (0, 1), "fcfs"),
                   InstanceSpec(1, "agent.0.flux.001", (2, 3), "easy")),
        lean=True, trace=True, observe=False, faults=None)
    clone = _roundtrip(cfg)
    assert clone.instances[1].node_indices == (2, 3)


def test_window_result_roundtrips():
    wr = WindowResult(
        next_time=float("inf"),
        reports=[JobReport(1.0, 0, 0, "j1", "flux.job.finish", {"ok": 1})],
        states=[StateReport(0, "READY")],
        events=[])
    clone = _roundtrip(wr)
    assert clone.next_time == float("inf")


def test_shard_stats_roundtrips():
    _roundtrip(ShardStats(
        fault_injected={"node_crash": 2},
        fault_log=[(1.0, "node_crash", "node.0012")],
        metrics=None, peak_rss_mb=123.5))


def test_spec_msg_roundtrips_with_jobspec():
    from repro.flux.jobspec import Jobspec, ResourceSpec

    spec = Jobspec(command="t", resources=ResourceSpec(cores=2, gpus=1),
                   duration=0.5)
    clone = _roundtrip(SpecMsg(7, spec))
    assert clone.spec.resources.cores == 2
