"""Canonical merge machinery: keys, merger modes, metric sync."""

import json

from repro.analytics.events import TraceEvent
from repro.analytics.export import save_profile
from repro.analytics.profiler import Profiler
from repro.shard.merge import (
    ProfileMerger,
    canonical_sort_key,
    dump_metrics,
    format_event_line,
    load_metrics,
)
from repro.sim import Environment


def _ev(time, entity, name, **meta):
    return TraceEvent(time=time, entity=entity, name=name, meta=meta)


def test_canonical_key_orders_time_entity_seq():
    a = canonical_sort_key(_ev(1.0, "task.b", "x"), 0)
    b = canonical_sort_key(_ev(1.0, "task.a", "x"), 5)
    c = canonical_sort_key(_ev(0.5, "task.z", "x"), 9)
    assert sorted([a, b, c]) == [c, b, a]


def test_format_event_line_matches_export_format(tmp_path):
    env = Environment()
    prof = Profiler(env, enabled=True)
    prof.record_event("e1", "ping", {"k": 1}, at=2.5)
    path = tmp_path / "p.jsonl"
    save_profile(prof, path)
    body = path.read_text().splitlines()[1:]  # drop schema header
    assert [format_event_line(ev).rstrip("\n") for ev in prof] == body


def _merged_events(prof):
    return [(ev.time, ev.entity, ev.name) for ev in prof]


def test_memory_merge_is_incremental_and_canonical():
    env = Environment()
    prof = Profiler(env, enabled=True)
    merger = ProfileMerger(prof)
    prof.record_event("coord", "a", {}, at=1.0)
    merger.merge([_ev(0.5, "shard.i0", "s1"), _ev(1.0, "shard.i0", "s2")])
    # Second merge: later coordinator events and shard events fold in
    # with persistent per-entity sequence numbers.
    prof.record_event("coord", "b", {}, at=1.0)
    merger.merge([_ev(1.0, "shard.i0", "s3")])
    assert _merged_events(prof) == [
        (0.5, "shard.i0", "s1"),
        (1.0, "coord", "a"),
        (1.0, "coord", "b"),
        (1.0, "shard.i0", "s2"),
        (1.0, "shard.i0", "s3"),
    ]


def test_incremental_merge_equals_one_shot():
    def build(step):
        env = Environment()
        prof = Profiler(env, enabled=True)
        merger = ProfileMerger(prof)
        shard = [_ev(t / 7.0, f"shard.i{t % 3}", f"n{t}") for t in range(20)]
        for t in range(20):
            prof.record_event(f"task.{t % 5:04d}", "tick", {}, at=t / 9.0)
        for i in range(0, 20, step):
            merger.merge(shard[i:i + step])
        return _merged_events(prof)

    assert build(20) == build(7) == build(1)


def test_spill_merge_matches_memory(tmp_path):
    def build(spill):
        env = Environment()
        kw = {"spill_dir": tmp_path / "sp", "spill_threshold": 4} \
            if spill else {}
        prof = Profiler(env, enabled=True, **kw)
        merger = ProfileMerger(prof)
        for t in range(12):
            prof.record_event(f"task.{t % 3:04d}", "tick", {"t": t},
                              at=float(t))
        merger.merge([_ev(float(t) + 0.5, "shard.i0", "s", t=t)
                      for t in range(12)])
        merger.merge([_ev(99.0, "shard.i1", "late")])
        path = tmp_path / ("spill.jsonl" if spill else "mem.jsonl")
        save_profile(prof, path)
        return path.read_bytes()

    assert build(False) == build(True)


def test_save_profile_dedupes_chunk_headers(tmp_path):
    # A chunk written by another save_profile (e.g. a shard worker's
    # exported stream) leads with its own schema header; concatenation
    # must keep exactly one.
    env = Environment()
    prof = Profiler(env, enabled=True, spill_dir=tmp_path / "sp",
                    spill_threshold=2)
    for t in range(5):
        prof.record_event("e", "tick", {}, at=float(t))
    prof.flush()
    assert prof.spilling and prof._chunks
    inner = save_profile(prof, prof._spill_dir / "chunk-zzz.jsonl")
    assert inner == 5
    prof._chunks.append(prof._spill_dir / "chunk-zzz.jsonl")
    out = tmp_path / "out.jsonl"
    save_profile(prof, out)
    lines = out.read_text().splitlines()
    headers = [ln for ln in lines if '"format"' in ln]
    assert len(headers) == 1 and lines[0] == headers[0]


def test_metric_dump_load_roundtrip_is_idempotent():
    from repro.observability.metrics import MetricsRegistry

    src = MetricsRegistry()
    c = src.counter("repro_t_total", "t", labels=("kind",))
    c.labels(kind="x").inc(3)
    g = src.gauge("repro_g", "g", labels=("i",))
    g.labels(i="0").set(7.5)
    h = src.histogram("repro_h", "h", buckets=(1.0, 10.0))
    h.observe(0.5)
    h.observe(5.0)

    dst = MetricsRegistry()
    dump = dump_metrics(src)
    load_metrics(dst, dump)
    load_metrics(dst, dump)  # replace-merge: repeat is a no-op
    assert dump_metrics(dst) == dump


def test_dump_metrics_is_json_safe():
    from repro.observability.metrics import MetricsRegistry

    reg = MetricsRegistry()
    reg.counter("repro_x_total", "x").inc()
    json.dumps(dump_metrics(reg))
