"""ShardEngine edges: ``run`` semantics parity and failure surfaces.

``Session.run`` delegates to the engine whenever sharding is active —
including runs where nothing was sharded — so the engine must mirror
``Environment.run`` semantics (return values, error messages) exactly.
"""

import pytest

from repro.core.session import Session
from repro.exceptions import SimulationError
from repro.platform.profiles import frontier


def _sharded_session(**kw):
    return Session(cluster=frontier(4), seed=3, shards=2,
                   shard_inline=True, **kw)


def _flux_session(n_nodes=8, parts=2, **kw):
    from repro.core.description import PartitionSpec, PilotDescription

    session = Session(cluster=frontier(n_nodes), seed=3, shards=2,
                      shard_inline=True, **kw)
    pmgr = session.pilot_manager()
    tmgr = session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=n_nodes,
        partitions=(PartitionSpec("flux", n_instances=parts),)))
    tmgr.add_pilot(pilot)
    return session, tmgr, pilot


def test_run_drain_returns_none():
    with _sharded_session() as session:
        assert session.engine is not None
        assert session.run() is None


def test_run_to_horizon_advances_clock():
    with _sharded_session() as session:
        session.run(until=5.0)
        assert session.now == 5.0


def test_run_to_past_horizon_matches_sequential_error():
    with _sharded_session() as session:
        session.run(until=5.0)
        with pytest.raises(SimulationError) as sharded_err:
            session.run(until=1.0)
    with Session(cluster=frontier(4), seed=3) as plain:
        plain.run(until=5.0)
        with pytest.raises(SimulationError) as plain_err:
            plain.run(until=1.0)
    assert str(sharded_err.value) == str(plain_err.value)


def test_deadlock_matches_sequential_error():
    with _sharded_session() as session:
        ev = session.env.event()
        with pytest.raises(SimulationError) as sharded_err:
            session.run(ev)
    with Session(cluster=frontier(4), seed=3) as plain:
        ev = plain.env.event()
        with pytest.raises(SimulationError) as plain_err:
            plain.run(ev)
    assert str(sharded_err.value) == str(plain_err.value)


def test_sharded_hierarchy_deadlock_uses_same_message():
    # With live shard hosts the deadlock detector must consider the
    # shards' clocks, then fail with the sequential kernel's message.
    session, _, _ = _flux_session()
    with session:
        session.run()  # drain startup: hierarchy comes up READY
        assert session.engine.hosts
        ev = session.env.event()
        with pytest.raises(SimulationError, match="ran out of events"):
            session.run(ev)


def test_sharded_executor_selected_only_for_multi_instance_flux():
    from repro.core.agent.executor_flux import (
        FluxExecutor,
        ShardedFluxExecutor,
    )

    session, _, pilot = _flux_session(n_nodes=8, parts=2)
    with session:
        session.run()
        execs = list(pilot.agent.executors.values())
        assert any(isinstance(ex, ShardedFluxExecutor) for ex in execs)
        assert not any(type(ex) is FluxExecutor for ex in execs)

    single, _, spilot = _flux_session(n_nodes=4, parts=1)
    with single:
        single.run()
        execs = list(spilot.agent.executors.values())
        assert any(type(ex) is FluxExecutor for ex in execs)
        assert single.engine.hosts == []


def test_task_completion_events_resolve_through_engine():
    from repro.core.description import TaskDescription

    session, tmgr, _ = _flux_session()
    with session:
        tasks = tmgr.submit_tasks([
            TaskDescription(executable="/bin/true", duration=0.0)
            for _ in range(8)])
        session.run(tmgr.wait_tasks())
        assert all(t.succeeded for t in tasks)
