"""``resolve_shards``: the ``--shards`` argument grammar."""

import os

import pytest

from repro.exceptions import ConfigurationError
from repro.shard import resolve_shards


def test_none_means_off():
    assert resolve_shards(None) == 1


def test_auto_and_zero_use_cores():
    cores = os.cpu_count() or 1
    assert resolve_shards("auto") == cores
    assert resolve_shards(0) == cores
    assert resolve_shards("0") == cores


def test_explicit_counts_pass_through():
    assert resolve_shards(1) == 1
    assert resolve_shards(2) == 2
    assert resolve_shards("7") == 7
    # More shards than cores is allowed (the engine clamps to the
    # instance count, not the core count — oversubscription is the
    # user's call).
    assert resolve_shards((os.cpu_count() or 1) + 13) == \
        (os.cpu_count() or 1) + 13


def test_rejects_garbage():
    with pytest.raises(ConfigurationError):
        resolve_shards("many")
    with pytest.raises(ConfigurationError):
        resolve_shards(-1)
    with pytest.raises(ConfigurationError):
        resolve_shards("-3")
    with pytest.raises(ConfigurationError):
        resolve_shards(())


def test_config_validates_shards_eagerly():
    from repro.experiments.configs import config_by_id

    with pytest.raises(ConfigurationError):
        config_by_id("flux_n", shards="lots")
    cfg = config_by_id("flux_n", shards=2)
    assert cfg.shards == 2
