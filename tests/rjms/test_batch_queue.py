"""Tests for the Slurm batch queue: FIFO, EASY backfill, recycling."""

import pytest

from repro.core import PilotDescription, PilotState, Session
from repro.platform import DETERMINISTIC_LATENCIES, generic
from repro.rjms import SlurmController
from repro.sim import Environment, RngStreams


@pytest.fixture
def controller(env, rng):
    return SlurmController(env, generic(8), DETERMINISTIC_LATENCIES, rng)


def submit(env, ctl, n_nodes, walltime=float("inf")):
    return env.process(ctl.submit_batch_job(n_nodes, walltime))


class TestQueueing:
    def test_immediate_grant_when_free(self, env, controller):
        alloc = env.run(submit(env, controller, 4))
        assert alloc.n_nodes == 4
        assert controller.queue_depth == 0

    def test_second_job_queues_when_full(self, env, controller):
        p1 = submit(env, controller, 8, walltime=100.0)
        p2 = submit(env, controller, 4)
        env.run(until=10.0)
        assert p1.triggered
        assert not p2.triggered
        assert controller.queue_depth == 1

    def test_release_grants_queued_job(self, env, controller):
        p1 = submit(env, controller, 8, walltime=100.0)
        p2 = submit(env, controller, 4)
        env.run(until=1.0)
        alloc1 = p1.value
        controller.release_job(alloc1)
        env.run(until=2.0)
        assert p2.triggered
        assert p2.value.n_nodes == 4

    def test_fifo_order_preserved(self, env, controller):
        granted = []

        def job(env, ctl, name, n):
            alloc = yield env.process(ctl.submit_batch_job(n, 50.0))
            granted.append((name, env.now))
            yield env.timeout(50.0)
            ctl.release_job(alloc)

        env.process(job(env, controller, "a", 8))
        env.process(job(env, controller, "b", 8))
        env.process(job(env, controller, "c", 8))
        env.run()
        assert [n for n, _ in granted] == ["a", "b", "c"]

    def test_release_unknown_job_is_noop(self, env, controller):
        alloc = env.run(submit(env, controller, 2))
        controller.release_job(alloc)
        controller.release_job(alloc)  # second release: no-op
        assert controller.cluster.free_nodes == 8


class TestBackfill:
    def test_short_small_job_backfills(self, env, controller):
        """head needs the whole machine at t=100; a 4-node 50 s job
        fits in the hole and jumps the queue."""
        grants = {}

        def job(env, ctl, name, n, wall):
            alloc = yield env.process(ctl.submit_batch_job(n, wall))
            grants[name] = env.now
            yield env.timeout(wall)
            ctl.release_job(alloc)

        env.process(job(env, controller, "running", 4, 100.0))
        env.run(until=1.0)
        env.process(job(env, controller, "head", 8, 100.0))
        env.process(job(env, controller, "filler", 4, 50.0))
        env.run()
        assert grants["filler"] < grants["head"]
        assert grants["filler"] < 2.0  # backfilled immediately

    def test_long_job_does_not_delay_head(self, env, controller):
        grants = {}

        def job(env, ctl, name, n, wall):
            alloc = yield env.process(ctl.submit_batch_job(n, wall))
            grants[name] = env.now
            yield env.timeout(wall)
            ctl.release_job(alloc)

        env.process(job(env, controller, "running", 4, 100.0))
        env.run(until=1.0)
        env.process(job(env, controller, "head", 8, 100.0))
        env.process(job(env, controller, "greedy", 4, 500.0))
        env.run()
        # greedy's walltime overlaps the head's reservation: it must
        # NOT start before the head.
        assert grants["head"] < grants["greedy"]


class TestPilotIntegration:
    def test_pilots_queue_and_recycle_nodes(self):
        session = Session(cluster=generic(4, 8, 2), seed=95)
        pmgr = session.pilot_manager()
        # Two full-machine pilots with walltimes: the second waits for
        # the first to expire, then reuses its nodes.
        first = pmgr.submit_pilots(PilotDescription(nodes=4, walltime=100.0))
        second = pmgr.submit_pilots(PilotDescription(nodes=4,
                                                     walltime=100.0))
        session.run(second.active_event())
        assert first.state == PilotState.DONE  # walltime expired
        assert second.is_active
        assert session.now >= 100.0

    def test_canceled_pilot_frees_nodes(self):
        session = Session(cluster=generic(4, 8, 2), seed=96)
        pmgr = session.pilot_manager()
        first = pmgr.submit_pilots(PilotDescription(nodes=4))
        session.run(first.active_event())
        waiting = pmgr.submit_pilots(PilotDescription(nodes=4))
        session.run(until=session.now + 5.0)
        assert not waiting.is_active
        # Cancel the holder; the waiter gets its nodes.
        if first.agent is not None:
            first.agent.shutdown()
        first.advance(PilotState.CANCELED)
        session.run(waiting.active_event())
        assert waiting.is_active
