"""Unit tests for the srun launcher and its concurrency ceiling."""

import pytest

from repro.platform import DETERMINISTIC_LATENCIES, generic
from repro.rjms import SlurmController, SrunLauncher
from repro.sim import Environment, RngStreams


@pytest.fixture
def srun(env, rng):
    lat = DETERMINISTIC_LATENCIES.with_overrides(srun_ceiling=4)
    ctl = SlurmController(env, generic(16), lat, rng)
    return SrunLauncher(env, ctl, lat, rng)


class TestCeiling:
    def test_concurrency_capped(self, env, srun):
        peak = [0]

        def track_start():
            peak[0] = max(peak[0], srun.active)

        for _ in range(10):
            env.process(srun.run_task(alloc_nodes=1, duration=100.0,
                                      on_start=track_start))
        env.run()
        assert peak[0] <= 4

    def test_all_tasks_complete_despite_ceiling(self, env, srun):
        stops = []
        for i in range(10):
            env.process(srun.run_task(alloc_nodes=1, duration=10.0,
                                      on_stop=lambda i=i: stops.append(i)))
        env.run()
        assert len(stops) == 10

    def test_slot_held_for_task_lifetime(self, env, srun):
        """A 4-slot ceiling with 8 long tasks runs exactly 2 waves."""
        starts = []
        for _ in range(8):
            env.process(srun.run_task(
                alloc_nodes=1, duration=50.0,
                on_start=lambda: starts.append(env.now)))
        env.run()
        waves = sorted(starts)
        assert len(waves) == 8
        # Second wave begins only after first-wave tasks end (>= 50 s).
        assert waves[4] - waves[0] >= 50.0

    def test_waiting_counter(self, env, srun):
        for _ in range(10):
            env.process(srun.run_task(alloc_nodes=1, duration=100.0))
        env.run(until=1.0)
        assert srun.active == 4
        assert srun.waiting == 6

    def test_null_tasks_cycle_quickly(self, env, srun):
        count = [0]
        for _ in range(20):
            env.process(srun.run_task(
                alloc_nodes=1, duration=0.0,
                on_stop=lambda: count.__setitem__(0, count[0] + 1)))
        env.run()
        assert count[0] == 20
        assert srun.active == 0


class TestLaunchRate:
    def test_controller_bound_throughput(self, env, rng):
        """Null-task launch rate equals the controller service rate."""
        lat = DETERMINISTIC_LATENCIES
        ctl = SlurmController(env, generic(16), lat, rng)
        launcher = SrunLauncher(env, ctl, lat, rng)
        starts = []
        for _ in range(100):
            env.process(launcher.run_task(
                alloc_nodes=1, duration=0.0,
                on_start=lambda: starts.append(env.now)))
        env.run()
        window = max(starts) - min(starts)
        rate = (len(starts) - 1) / window
        expected = 1.0 / (lat.srun_ctl_base + lat.srun_ctl_per_node
                          + lat.srun_ctl_per_node15)
        assert rate == pytest.approx(expected, rel=0.02)

    def test_rate_declines_with_allocation_size(self, env, rng):
        lat = DETERMINISTIC_LATENCIES
        ctl = SlurmController(env, generic(64), lat, rng)
        launcher = SrunLauncher(env, ctl, lat, rng)

        def measure(alloc_nodes):
            starts = []
            procs = [env.process(launcher.run_task(
                alloc_nodes=alloc_nodes, duration=0.0,
                on_start=lambda: starts.append(env.now)))
                for _ in range(50)]
            env.run(env.all_of(procs))
            return (len(starts) - 1) / (max(starts) - min(starts))

        assert measure(1) > measure(4) > measure(16)
