"""Unit tests for the PRRTE DVM substrate."""

import pytest

from repro.exceptions import RuntimeStartupError
from repro.platform import DETERMINISTIC_LATENCIES, FRONTIER_LATENCIES, generic
from repro.rjms import DvmState, PrrteDVM
from repro.sim import Environment, RngStreams


def make_dvm(env, rng, n_nodes=4, latencies=FRONTIER_LATENCIES):
    alloc = generic(n_nodes).allocate_nodes(n_nodes)
    return PrrteDVM(env, alloc, latencies, rng, dvm_id="dvm.test")


class TestLifecycle:
    def test_bootstrap_faster_than_flux(self, env, rng):
        dvm = make_dvm(env, rng, latencies=DETERMINISTIC_LATENCIES)
        env.run(env.process(dvm.start()))
        assert dvm.is_ready
        assert env.now < DETERMINISTIC_LATENCIES.flux_startup_mean

    def test_double_start_raises(self, env, rng):
        dvm = make_dvm(env, rng)
        env.run(env.process(dvm.start()))
        with pytest.raises(RuntimeStartupError):
            env.run(env.process(dvm.start()))

    def test_run_before_ready_raises(self, env, rng):
        dvm = make_dvm(env, rng)
        with pytest.raises(RuntimeStartupError):
            next(dvm.run_task(duration=1.0))

    def test_shutdown(self, env, rng):
        dvm = make_dvm(env, rng)
        env.run(env.process(dvm.start()))
        dvm.shutdown()
        assert dvm.state == DvmState.STOPPED


class TestLaunching:
    def test_tasks_run_with_duration(self, env, rng):
        dvm = make_dvm(env, rng, latencies=DETERMINISTIC_LATENCIES)
        env.run(env.process(dvm.start()))
        spans = []
        procs = [env.process(dvm.run_task(
            duration=5.0,
            on_start=lambda: spans.append(("start", env.now)),
            on_stop=lambda: spans.append(("stop", env.now))))
            for _ in range(3)]
        env.run(env.all_of(procs))
        starts = [t for k, t in spans if k == "start"]
        stops = [t for k, t in spans if k == "stop"]
        assert len(starts) == len(stops) == 3
        assert all(b - a == pytest.approx(5.0)
                   for a, b in zip(sorted(starts), sorted(stops)))

    def test_controller_serializes_launches(self, env, rng):
        lat = DETERMINISTIC_LATENCIES
        dvm = make_dvm(env, rng, latencies=lat)
        env.run(env.process(dvm.start()))
        starts = []
        procs = [env.process(dvm.run_task(
            duration=0.0, on_start=lambda: starts.append(env.now)))
            for _ in range(100)]
        env.run(env.all_of(procs))
        rate = (len(starts) - 1) / (max(starts) - min(starts))
        expected = 1.0 / (lat.prrte_launch_cost
                          + lat.prrte_launch_per_node * 4)
        assert rate == pytest.approx(expected, rel=0.02)

    def test_no_concurrency_ceiling(self, env, rng):
        """Hundreds of concurrent long tasks — no srun-like cap."""
        dvm = make_dvm(env, rng, n_nodes=8)
        env.run(env.process(dvm.start()))
        running = [0]
        peak = [0]

        def on_start():
            running[0] += 1
            peak[0] = max(peak[0], running[0])

        def on_stop():
            running[0] -= 1

        procs = [env.process(dvm.run_task(duration=300.0,
                                          on_start=on_start,
                                          on_stop=on_stop))
                 for _ in range(300)]
        env.run(env.all_of(procs))
        assert peak[0] == 300

    def test_launch_cost_grows_with_dvm_size(self, env, rng):
        lat = DETERMINISTIC_LATENCIES
        small = make_dvm(env, rng, n_nodes=1, latencies=lat)
        large = make_dvm(Environment(), RngStreams(0), n_nodes=64,
                         latencies=lat)
        assert large.launch_cost() > small.launch_cost()


class TestExecutorIntegration:
    def test_prrte_backend_end_to_end(self):
        from repro.core import (
            PartitionSpec, PilotDescription, Session, TaskDescription)

        session = Session(cluster=generic(4, 8, 2), seed=71)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("prrte"),)))
        tmgr.add_pilot(pilot)
        tasks = tmgr.submit_tasks([TaskDescription(duration=5.0)
                                   for _ in range(50)])
        session.run(tmgr.wait_tasks())
        assert all(t.succeeded for t in tasks)
        assert all(t.backend == "prrte" for t in tasks)
        ex = pilot.agent.executors["prrte"]
        assert ex.allocation.free_cores == ex.allocation.total_cores

    def test_router_prefers_flux_over_prrte_over_srun(self):
        from repro.core import TaskDescription
        from repro.core.agent.router import Router

        td = TaskDescription()
        assert Router(["srun", "prrte", "flux"]).route(td, 8, 2) == "flux"
        assert Router(["srun", "prrte"]).route(td, 8, 2) == "prrte"
        assert Router(["srun"]).route(td, 8, 2) == "srun"

    def test_prrte_cancellation(self):
        from repro.core import (
            PartitionSpec, PilotDescription, Session, TaskDescription,
            TaskState)

        session = Session(cluster=generic(4, 8, 2), seed=72)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("prrte"),)))
        tmgr.add_pilot(pilot)
        tasks = tmgr.submit_tasks([TaskDescription(duration=1e6)
                                   for _ in range(4)])
        session.run(until=session.now + 30.0)
        tmgr.cancel_tasks()
        session.run(until=session.now + 10.0)
        assert all(t.state == TaskState.CANCELED for t in tasks)
        ex = pilot.agent.executors["prrte"]
        assert ex.allocation.free_cores == ex.allocation.total_cores

    def test_prrte_retry_on_failure(self):
        from repro.core import (
            PartitionSpec, PilotDescription, Session, TaskDescription,
            TaskState)

        session = Session(cluster=generic(4, 8, 2), seed=73)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("prrte"),)))
        tmgr.add_pilot(pilot)
        task = tmgr.submit_tasks(TaskDescription(duration=1.0, fail=True,
                                                 retries=2))
        session.run(tmgr.wait_tasks())
        assert task.state == TaskState.FAILED
        assert task.attempts == 3
