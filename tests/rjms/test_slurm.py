"""Unit tests for the Slurm controller model."""

import pytest

from repro.exceptions import AllocationError
from repro.platform import DETERMINISTIC_LATENCIES, generic
from repro.rjms import SlurmController
from repro.sim import Environment, RngStreams


@pytest.fixture
def controller(env, rng):
    return SlurmController(env, generic(16), DETERMINISTIC_LATENCIES, rng)


class TestBatchJobs:
    def test_grants_allocation(self, env, controller):
        alloc = env.run(env.process(controller.submit_batch_job(4)))
        assert alloc.n_nodes == 4

    def test_oversized_request_raises(self, env, controller):
        with pytest.raises(AllocationError):
            env.run(env.process(controller.submit_batch_job(100)))

    def test_queue_wait_delays_grant(self, env, rng):
        ctl = SlurmController(env, generic(4), DETERMINISTIC_LATENCIES, rng,
                              queue_wait=10.0)
        env.run(env.process(ctl.submit_batch_job(2)))
        assert env.now > 0.0


class TestLaunchPath:
    def test_service_time_grows_with_nodes(self, controller):
        t1 = controller.launch_service_time(1)
        t16 = controller.launch_service_time(16)
        assert t16 > t1

    def test_deterministic_service_time(self, controller):
        lat = DETERMINISTIC_LATENCIES
        expected = (lat.srun_ctl_base + lat.srun_ctl_per_node * 4
                    + lat.srun_ctl_per_node15 * 8.0)
        assert controller.launch_service_time(4) == pytest.approx(expected)

    def test_pipeline_serializes_launches(self, env, controller):
        done = []

        def launch(env, ctl, i):
            yield from ctl.process_launch_rpc(alloc_nodes=1)
            done.append((env.now, i))

        for i in range(5):
            env.process(launch(env, controller, i))
        env.run()
        times = [t for t, _ in done]
        # Strictly increasing completion times: launches are serialized.
        assert all(b > a for a, b in zip(times, times[1:]))
        per_launch = controller.launch_service_time(1)
        assert times[-1] == pytest.approx(5 * per_launch)

    def test_pipeline_depth_visible(self, env, controller):
        for _ in range(3):
            env.process(_launch_gen(env, controller))
        env.step()  # start the first process
        assert controller.pipeline_depth >= 0


def _launch_gen(env, ctl):
    yield from ctl.process_launch_rpc(alloc_nodes=2)
