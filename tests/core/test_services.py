"""Tests for persistent services."""

import pytest

from repro.core import (
    PartitionSpec,
    PilotDescription,
    ServiceDescription,
    Session,
    TaskDescription,
)
from repro.exceptions import ConfigurationError
from repro.platform import ResourceSpec, generic


@pytest.fixture
def active_pilot():
    session = Session(cluster=generic(4, 8, 2), seed=51)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=4, partitions=(PartitionSpec("flux"),)))
    tmgr.add_pilot(pilot)
    session.run(pilot.active_event())
    return session, tmgr, pilot


class TestDescription:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceDescription(startup_time=-1)
        with pytest.raises(ConfigurationError):
            ServiceDescription(service_latency=-1)
        with pytest.raises(ConfigurationError):
            ServiceDescription(concurrency=0)


class TestLifecycle:
    def test_service_becomes_ready(self, active_pilot):
        session, _, pilot = active_pilot
        service = pilot.start_service(ServiceDescription(
            name="replay-buffer", resources=ResourceSpec(cores=2),
            startup_time=8.0))
        assert not service.is_ready
        session.run(service.ready_event())
        assert service.is_ready
        # Ready after launch latency + 8 s bootstrap.
        assert session.now >= 8.0

    def test_service_holds_resources(self, active_pilot):
        session, _, pilot = active_pilot
        service = pilot.start_service(ServiceDescription(
            name="learner", resources=ResourceSpec(cores=8)))
        session.run(service.ready_event())
        alloc = pilot.agent.executors["flux"].allocation
        assert alloc.free_cores == alloc.total_cores - 8

    def test_stop_releases_resources(self, active_pilot):
        session, _, pilot = active_pilot
        service = pilot.start_service(ServiceDescription(
            name="learner", resources=ResourceSpec(cores=8)))
        session.run(service.ready_event())
        service.stop()
        session.run(until=session.now + 5.0)
        assert service.is_final
        alloc = pilot.agent.executors["flux"].allocation
        assert alloc.free_cores == alloc.total_cores

    def test_requires_active_pilot(self):
        session = Session(cluster=generic(4, 8, 2), seed=52)
        pmgr = session.pilot_manager()
        pilot = pmgr.submit_pilots(PilotDescription(nodes=4))
        with pytest.raises(ConfigurationError):
            pilot.start_service(ServiceDescription())

    def test_agent_shutdown_stops_services(self, active_pilot):
        session, _, pilot = active_pilot
        service = pilot.start_service(ServiceDescription(name="svc"))
        session.run(service.ready_event())
        pilot.agent.shutdown()
        assert service.is_final

    def test_services_and_tasks_coexist(self, active_pilot):
        session, tmgr, pilot = active_pilot
        service = pilot.start_service(ServiceDescription(
            name="svc", resources=ResourceSpec(cores=4)))
        tasks = tmgr.submit_tasks([TaskDescription(duration=5.0)
                                   for _ in range(20)])
        session.run(tmgr.wait_tasks())
        assert all(t.succeeded for t in tasks)
        assert service.is_ready  # still up after the workload


class TestEndpoint:
    def test_calls_wait_for_readiness(self, active_pilot):
        session, _, pilot = active_pilot
        service = pilot.start_service(ServiceDescription(
            name="svc", startup_time=30.0, service_latency=0.1))
        reply = service.endpoint.call("ping")
        session.run(reply)
        assert reply.value == "ping"
        assert session.now >= 30.0

    def test_custom_handler(self, active_pilot):
        session, _, pilot = active_pilot
        service = pilot.start_service(ServiceDescription(name="svc"))
        service.endpoint.set_handler(lambda x: x * 2)
        reply = service.endpoint.call(21)
        session.run(reply)
        assert reply.value == 42

    def test_concurrency_limits_throughput(self, active_pilot):
        session, _, pilot = active_pilot
        service = pilot.start_service(ServiceDescription(
            name="svc", startup_time=0.0, service_latency=1.0,
            concurrency=2))
        session.run(service.ready_event())
        t0 = session.now
        replies = [service.endpoint.call(i) for i in range(8)]
        session.run(session.env.all_of(replies))
        elapsed = session.now - t0
        # 8 requests, 2 at a time, ~1 s each -> ~4 waves.
        assert elapsed >= 3.0
        assert service.endpoint.n_completed == 8

    def test_call_counts(self, active_pilot):
        session, _, pilot = active_pilot
        service = pilot.start_service(ServiceDescription(name="svc"))
        for _ in range(3):
            service.endpoint.call()
        session.run(until=session.now + 60.0)
        assert service.endpoint.n_calls == 3
        assert service.endpoint.n_completed == 3
