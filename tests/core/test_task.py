"""Unit tests for the runtime Task object."""

import pytest

from repro.analytics import Profiler, events as tev
from repro.core import TaskDescription
from repro.core.states import TaskState
from repro.core.task import Task
from repro.exceptions import StateTransitionError
from repro.sim import Environment


@pytest.fixture
def profiler(env):
    return Profiler(env)


def make_task(env, profiler=None, **kw):
    return Task(env, "task.000000", TaskDescription(**kw), profiler=profiler)


class TestStateMachine:
    def test_initial_state(self, env):
        task = make_task(env)
        assert task.state == TaskState.NEW
        assert not task.is_final

    def test_advance_legal(self, env):
        task = make_task(env)
        task.advance(TaskState.TMGR_SCHEDULING)
        task.advance(TaskState.AGENT_SCHEDULING)
        assert task.state == TaskState.AGENT_SCHEDULING

    def test_advance_illegal_raises(self, env):
        task = make_task(env)
        with pytest.raises(StateTransitionError):
            task.advance(TaskState.DONE)

    def test_history_records_times(self, env):
        task = make_task(env)
        env._now = 5.0
        task.advance(TaskState.TMGR_SCHEDULING)
        assert task.state_history == [(0.0, TaskState.NEW),
                                      (5.0, TaskState.TMGR_SCHEDULING)]

    def test_exec_start_recorded(self, env):
        task = make_task(env)
        task.advance(TaskState.TMGR_SCHEDULING)
        task.advance(TaskState.AGENT_SCHEDULING)
        env._now = 3.0
        task.advance(TaskState.AGENT_EXECUTING)
        assert task.exec_start == 3.0

    def test_mark_exec_stop(self, env):
        task = make_task(env)
        task.advance(TaskState.TMGR_SCHEDULING)
        task.advance(TaskState.AGENT_SCHEDULING)
        task.advance(TaskState.AGENT_EXECUTING)
        env._now = 10.0
        task.mark_exec_stop()
        assert task.exec_stop == 10.0


class TestCompletion:
    def test_completion_event_fires_on_done(self, env):
        task = make_task(env)
        ev = task.completion_event()
        task.advance(TaskState.TMGR_SCHEDULING)
        task.advance(TaskState.AGENT_SCHEDULING)
        task.advance(TaskState.AGENT_EXECUTING)
        assert not ev.triggered
        task.advance(TaskState.DONE)
        assert ev.triggered
        assert ev.value == TaskState.DONE

    def test_completion_event_after_final(self, env):
        task = make_task(env)
        task.advance(TaskState.TMGR_SCHEDULING)
        task.fail("broke")
        assert task.completion_event().triggered

    def test_fail_sets_exception(self, env):
        task = make_task(env)
        task.advance(TaskState.TMGR_SCHEDULING)
        task.fail("reason text")
        assert task.state == TaskState.FAILED
        assert task.exception == "reason text"
        assert not task.succeeded

    def test_cancel(self, env):
        task = make_task(env)
        task.cancel()
        assert task.state == TaskState.CANCELED

    def test_cancel_after_final_is_noop(self, env):
        task = make_task(env)
        task.advance(TaskState.TMGR_SCHEDULING)
        task.fail("x")
        task.cancel()
        assert task.state == TaskState.FAILED


class TestTracing:
    def test_creation_event_recorded(self, env, profiler):
        make_task(env, profiler=profiler)
        assert len(profiler.events_named(tev.TASK_CREATED)) == 1

    def test_lifecycle_events_recorded(self, env, profiler):
        task = make_task(env, profiler=profiler)
        task.advance(TaskState.TMGR_SCHEDULING)
        task.advance(TaskState.AGENT_SCHEDULING)
        task.advance(TaskState.AGENT_EXECUTING)
        task.mark_exec_stop()
        task.advance(TaskState.DONE)
        names = [e.name for e in profiler.events_for("task.000000")]
        assert tev.TASK_SCHEDULED in names
        assert tev.TASK_EXEC_START in names
        assert tev.TASK_EXEC_STOP in names
        assert tev.TASK_DONE in names

    def test_event_meta_carries_resources(self, env, profiler):
        from repro.platform import ResourceSpec

        task = Task(env, "t", TaskDescription(
            resources=ResourceSpec(cores=4, gpus=2)), profiler=profiler)
        ev = profiler.events_named(tev.TASK_CREATED)[0]
        assert ev.meta["cores"] == 4
        assert ev.meta["gpus"] == 2
