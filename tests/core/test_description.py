"""Unit tests for task/pilot descriptions and partition sizing."""

import pytest

from repro.core import PartitionSpec, PilotDescription, TaskDescription
from repro.exceptions import ConfigurationError
from repro.platform import ResourceSpec


class TestTaskDescription:
    def test_defaults(self):
        td = TaskDescription()
        assert td.mode == "executable"
        assert td.resources.cores == 1
        assert td.retries == 0

    def test_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            TaskDescription(mode="service")

    def test_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            TaskDescription(backend="kubernetes")

    def test_negative_duration(self):
        with pytest.raises(ConfigurationError):
            TaskDescription(duration=-1)

    def test_negative_retries(self):
        with pytest.raises(ConfigurationError):
            TaskDescription(retries=-1)

    def test_negative_staging(self):
        with pytest.raises(ConfigurationError):
            TaskDescription(input_staging=-1)

    def test_valid_backend_hints(self):
        for backend in ("srun", "flux", "dragon"):
            assert TaskDescription(backend=backend).backend == backend


class TestPartitionSpec:
    def test_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            PartitionSpec("mesos")

    def test_zero_instances(self):
        with pytest.raises(ConfigurationError):
            PartitionSpec("flux", n_instances=0)

    def test_nodes_must_host_instances(self):
        with pytest.raises(ConfigurationError):
            PartitionSpec("flux", n_instances=4, nodes=2)


class TestPilotDescription:
    def test_default_is_srun(self):
        pd = PilotDescription(nodes=4)
        assert pd.partitions[0].backend == "srun"

    def test_zero_nodes(self):
        with pytest.raises(ConfigurationError):
            PilotDescription(nodes=0)

    def test_zero_walltime(self):
        with pytest.raises(ConfigurationError):
            PilotDescription(nodes=1, walltime=0)

    def test_empty_partitions(self):
        with pytest.raises(ConfigurationError):
            PilotDescription(nodes=4, partitions=())

    def test_over_claimed_nodes(self):
        with pytest.raises(ConfigurationError):
            PilotDescription(nodes=4, partitions=(
                PartitionSpec("flux", nodes=3),
                PartitionSpec("dragon", nodes=3)))

    def test_too_many_instances(self):
        with pytest.raises(ConfigurationError):
            PilotDescription(nodes=2, partitions=(
                PartitionSpec("flux", n_instances=3),))


class TestNodeShares:
    def test_single_partition_gets_everything(self):
        pd = PilotDescription(nodes=8)
        assert pd.node_shares() == [8]

    def test_equal_split(self):
        pd = PilotDescription(nodes=8, partitions=(
            PartitionSpec("flux"), PartitionSpec("dragon")))
        assert pd.node_shares() == [4, 4]

    def test_uneven_split(self):
        pd = PilotDescription(nodes=7, partitions=(
            PartitionSpec("flux"), PartitionSpec("dragon")))
        assert pd.node_shares() == [4, 3]

    def test_explicit_sizes_honored(self):
        pd = PilotDescription(nodes=10, partitions=(
            PartitionSpec("flux", nodes=6), PartitionSpec("dragon")))
        assert pd.node_shares() == [6, 4]

    def test_share_must_host_instances(self):
        pd = PilotDescription(nodes=4, partitions=(
            PartitionSpec("flux", nodes=3),
            PartitionSpec("dragon", n_instances=1)))
        assert pd.node_shares() == [3, 1]
        with pytest.raises(ConfigurationError):
            PilotDescription(nodes=4, partitions=(
                PartitionSpec("flux", nodes=3),
                PartitionSpec("dragon", n_instances=2))).node_shares()
