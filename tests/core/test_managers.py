"""Unit tests for PilotManager, TaskManager and Session."""

import pytest

from repro.core import (
    PartitionSpec,
    PilotDescription,
    PilotState,
    Session,
    TaskDescription,
    TaskState,
)
from repro.exceptions import ConfigurationError
from repro.platform import generic


class TestSession:
    def test_defaults_to_frontier(self):
        session = Session()
        assert session.cluster.name == "frontier"
        session.close()

    def test_context_manager_closes(self, small_cluster):
        with Session(cluster=small_cluster) as session:
            session.cluster.allocate_nodes(4)
        assert small_cluster.allocate_nodes(8).n_nodes == 8

    def test_unique_uids(self, session):
        a = session.ids.next("x")
        b = session.ids.next("x")
        assert a != b


class TestPilotManager:
    def test_pilot_becomes_active(self, session):
        pmgr = session.pilot_manager()
        pilot = pmgr.submit_pilots(PilotDescription(nodes=4))
        session.run(pilot.active_event())
        assert pilot.is_active
        assert pilot.allocation.n_nodes == 4

    def test_multiple_pilots(self, session):
        pmgr = session.pilot_manager()
        pilots = pmgr.submit_pilots([PilotDescription(nodes=2),
                                     PilotDescription(nodes=2)])
        assert len(pilots) == 2
        session.run(session.env.all_of([p.active_event() for p in pilots]))
        assert all(p.is_active for p in pilots)

    def test_oversized_pilot_fails(self, session):
        pmgr = session.pilot_manager()
        pilot = pmgr.submit_pilots(PilotDescription(nodes=100))
        session.run(pilot.completion_event())
        assert pilot.state == PilotState.FAILED

    def test_cancel_pilots(self, session):
        pmgr = session.pilot_manager()
        pilot = pmgr.submit_pilots(PilotDescription(nodes=2))
        session.run(pilot.active_event())
        pmgr.cancel_pilots()
        assert pilot.state == PilotState.CANCELED

    def test_pilot_startup_overhead_traced(self, session):
        pmgr = session.pilot_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("flux", n_instances=2),)))
        session.run(pilot.active_event())
        from repro.analytics import startup_overheads

        overheads = startup_overheads(session.profiler, kind="flux")
        assert len(overheads) == 2
        assert all(15.0 < dt < 30.0 for _, dt in overheads)


class TestTaskManager:
    def test_requires_pilot(self, session):
        tmgr = session.task_manager()
        with pytest.raises(ConfigurationError):
            tmgr.submit_tasks(TaskDescription())

    def test_single_description_returns_single_task(self, session):
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(nodes=2))
        tmgr.add_pilot(pilot)
        task = tmgr.submit_tasks(TaskDescription(duration=1.0))
        session.run(tmgr.wait_tasks())
        assert task.succeeded

    def test_add_pilot_twice_raises(self, session):
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(nodes=2))
        tmgr.add_pilot(pilot)
        with pytest.raises(ConfigurationError):
            tmgr.add_pilot(pilot)

    def test_tasks_submitted_before_pilot_active_still_run(self, session):
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(nodes=2))
        tmgr.add_pilot(pilot)
        # Submit immediately, before the agent bootstraps.
        tasks = tmgr.submit_tasks([TaskDescription(duration=1.0)
                                   for _ in range(5)])
        session.run(tmgr.wait_tasks())
        assert all(t.succeeded for t in tasks)

    def test_counts(self, session):
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(nodes=2))
        tmgr.add_pilot(pilot)
        tmgr.submit_tasks([TaskDescription(duration=1.0) for _ in range(3)])
        session.run(tmgr.wait_tasks())
        assert tmgr.counts() == {TaskState.DONE: 3}

    def test_wait_subset(self, session):
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(nodes=2))
        tmgr.add_pilot(pilot)
        fast = tmgr.submit_tasks(TaskDescription(duration=1.0))
        slow = tmgr.submit_tasks(TaskDescription(duration=500.0))
        session.run(tmgr.wait_tasks([fast]))
        assert fast.succeeded
        assert not slow.is_final
