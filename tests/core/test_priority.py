"""Tests for task priorities through the Flux urgency mapping."""

import pytest

from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
)
from repro.exceptions import ConfigurationError
from repro.platform import ResourceSpec, generic


class TestValidation:
    def test_bounds(self):
        TaskDescription(priority=15)
        TaskDescription(priority=-16)
        with pytest.raises(ConfigurationError):
            TaskDescription(priority=16)
        with pytest.raises(ConfigurationError):
            TaskDescription(priority=-17)


class TestPriorityScheduling:
    def test_high_priority_overtakes_queue(self):
        session = Session(cluster=generic(1, 8, 2), seed=62)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=1, partitions=(PartitionSpec("flux"),)))
        tmgr.add_pilot(pilot)
        # Fill the 8-core node, then queue many normals plus one urgent.
        blockers = tmgr.submit_tasks([
            TaskDescription(duration=60.0) for _ in range(8)])
        normals = tmgr.submit_tasks([
            TaskDescription(duration=10.0) for _ in range(16)])
        urgent = tmgr.submit_tasks(TaskDescription(duration=10.0,
                                                   priority=10))
        session.run(tmgr.wait_tasks())
        assert urgent.succeeded
        # The urgent task started with (or before) the first wave of
        # queued normals.
        first_normal_starts = sorted(t.exec_start for t in normals)
        assert urgent.exec_start <= first_normal_starts[0] + 1e-6

    def test_low_priority_runs_last(self):
        session = Session(cluster=generic(1, 8, 2), seed=63)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=1, partitions=(PartitionSpec("flux"),)))
        tmgr.add_pilot(pilot)
        blockers = tmgr.submit_tasks([
            TaskDescription(duration=60.0,
                            resources=ResourceSpec(cores=8))])
        low = tmgr.submit_tasks(TaskDescription(duration=5.0, priority=-10))
        normals = tmgr.submit_tasks([
            TaskDescription(duration=5.0) for _ in range(8)])
        session.run(tmgr.wait_tasks())
        assert low.exec_start >= max(t.exec_start for t in normals)

    def test_priority_noop_on_other_backends(self):
        """srun/dragon execute FIFO regardless of priority (documented
        backend capability difference)."""
        session = Session(cluster=generic(2, 8, 2), seed=64)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=2, partitions=(PartitionSpec("prrte"),)))
        tmgr.add_pilot(pilot)
        tasks = tmgr.submit_tasks([
            TaskDescription(duration=1.0, priority=(10 if i == 5 else 0))
            for i in range(10)])
        session.run(tmgr.wait_tasks())
        assert all(t.succeeded for t in tasks)
