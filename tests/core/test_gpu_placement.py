"""GPU-aware placement behaviour across schedulers and backends."""

import pytest

from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
)
from repro.platform import ResourceSpec, generic


def gpu_session(backend, seed=61):
    session = Session(cluster=generic(4, 8, 2), seed=seed)  # 8 gpus total
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=4, partitions=(PartitionSpec(backend),)))
    tmgr.add_pilot(pilot)
    return session, tmgr, pilot


@pytest.mark.parametrize("backend", ["srun", "flux", "prrte"])
class TestGpuScheduling:
    def test_gpu_tasks_complete(self, backend):
        session, tmgr, _ = gpu_session(backend)
        tasks = tmgr.submit_tasks([
            TaskDescription(duration=5.0,
                            resources=ResourceSpec(cores=1, gpus=1))
            for _ in range(16)])
        session.run(tmgr.wait_tasks())
        assert all(t.succeeded for t in tasks)

    def test_gpu_pool_limits_concurrency(self, backend):
        """8 GPUs -> 16 one-GPU 10 s tasks need two waves even though
        cores are plentiful."""
        session, tmgr, _ = gpu_session(backend)
        tasks = tmgr.submit_tasks([
            TaskDescription(duration=10.0,
                            resources=ResourceSpec(cores=1, gpus=1))
            for _ in range(16)])
        session.run(tmgr.wait_tasks())
        starts = sorted(t.exec_start for t in tasks)
        assert starts[8] >= starts[0] + 10.0

    def test_gpus_released(self, backend):
        session, tmgr, pilot = gpu_session(backend)
        tmgr.submit_tasks([
            TaskDescription(duration=1.0,
                            resources=ResourceSpec(cores=2, gpus=2))
            for _ in range(6)])
        session.run(tmgr.wait_tasks())
        executor = pilot.agent.executors[backend]
        assert executor.allocation.free_gpus == 8


class TestGpuHeterogeneousMix:
    def test_cpu_and_gpu_tasks_pack_together(self):
        session, tmgr, pilot = gpu_session("flux")
        cpu = tmgr.submit_tasks([
            TaskDescription(duration=20.0,
                            resources=ResourceSpec(cores=4))
            for _ in range(8)])        # 32 cores: machine-wide
        gpu = tmgr.submit_tasks([
            TaskDescription(duration=20.0,
                            resources=ResourceSpec(cores=0, gpus=1))
            for _ in range(8)])        # rides along on the GPUs
        session.run(tmgr.wait_tasks())
        assert all(t.succeeded for t in cpu + gpu)
        # GPU-only tasks did not fight the CPU tasks for cores: both
        # populations ran in a single 20 s wave.
        spans = [t.exec_stop for t in cpu + gpu]
        assert max(spans) - min(t.exec_start for t in cpu + gpu) < 40.0

    def test_multi_node_gpu_task(self):
        session, tmgr, _ = gpu_session("flux")
        task = tmgr.submit_tasks(TaskDescription(
            duration=5.0, resources=ResourceSpec(cores=16, gpus=6)))
        session.run(tmgr.wait_tasks())
        assert task.succeeded
