"""Unit tests for the pilot/task state machines."""

import pytest

from repro.core.states import PilotState, TaskState, check_transition
from repro.exceptions import StateTransitionError


class TestTaskTransitions:
    def test_happy_path_is_legal(self):
        path = [TaskState.NEW, TaskState.TMGR_SCHEDULING,
                TaskState.AGENT_STAGING_INPUT, TaskState.AGENT_SCHEDULING,
                TaskState.AGENT_EXECUTING, TaskState.AGENT_STAGING_OUTPUT,
                TaskState.DONE]
        for a, b in zip(path, path[1:]):
            check_transition("task", a, b, TaskState.TRANSITIONS)

    def test_staging_optional(self):
        check_transition("task", TaskState.TMGR_SCHEDULING,
                         TaskState.AGENT_SCHEDULING, TaskState.TRANSITIONS)
        check_transition("task", TaskState.AGENT_EXECUTING,
                         TaskState.DONE, TaskState.TRANSITIONS)

    def test_retry_loop_is_legal(self):
        check_transition("task", TaskState.AGENT_EXECUTING,
                         TaskState.AGENT_SCHEDULING, TaskState.TRANSITIONS)

    def test_failure_reachable_from_non_final(self):
        for state in (TaskState.NEW, TaskState.TMGR_SCHEDULING,
                      TaskState.AGENT_SCHEDULING, TaskState.AGENT_EXECUTING):
            check_transition("task", state, TaskState.FAILED,
                             TaskState.TRANSITIONS)
            check_transition("task", state, TaskState.CANCELED,
                             TaskState.TRANSITIONS)

    def test_skip_ahead_is_illegal(self):
        with pytest.raises(StateTransitionError):
            check_transition("task", TaskState.NEW, TaskState.AGENT_EXECUTING,
                             TaskState.TRANSITIONS)

    def test_final_states_are_terminal(self):
        for final in TaskState.FINAL:
            for target in (TaskState.NEW, TaskState.AGENT_SCHEDULING,
                           TaskState.DONE):
                if target == final:
                    continue
                with pytest.raises(StateTransitionError):
                    check_transition("task", final, target,
                                     TaskState.TRANSITIONS)

    def test_backwards_is_illegal(self):
        with pytest.raises(StateTransitionError):
            check_transition("task", TaskState.AGENT_SCHEDULING,
                             TaskState.TMGR_SCHEDULING, TaskState.TRANSITIONS)

    def test_unknown_state_raises(self):
        with pytest.raises(StateTransitionError):
            check_transition("task", "LIMBO", TaskState.DONE,
                             TaskState.TRANSITIONS)


class TestPilotTransitions:
    def test_happy_path(self):
        path = [PilotState.NEW, PilotState.PMGR_LAUNCHING, PilotState.ACTIVE,
                PilotState.DONE]
        for a, b in zip(path, path[1:]):
            check_transition("pilot", a, b, PilotState.TRANSITIONS)

    def test_cannot_skip_launching(self):
        with pytest.raises(StateTransitionError):
            check_transition("pilot", PilotState.NEW, PilotState.ACTIVE,
                             PilotState.TRANSITIONS)

    def test_failure_paths(self):
        for state in (PilotState.NEW, PilotState.PMGR_LAUNCHING,
                      PilotState.ACTIVE):
            check_transition("pilot", state, PilotState.FAILED,
                             PilotState.TRANSITIONS)

    def test_final_states_terminal(self):
        for final in PilotState.FINAL:
            with pytest.raises(StateTransitionError):
                check_transition("pilot", final, PilotState.ACTIVE,
                                 PilotState.TRANSITIONS)
