"""Unit tests for the Pilot runtime object."""

import pytest

from repro.core import PilotDescription, PilotState
from repro.core.pilot import Pilot
from repro.exceptions import ConfigurationError, StateTransitionError
from repro.sim import Environment


@pytest.fixture
def pilot(env):
    return Pilot(env, "pilot.test", PilotDescription(nodes=4))


class TestStateMachine:
    def test_initial(self, pilot):
        assert pilot.state == PilotState.NEW
        assert not pilot.is_active
        assert not pilot.is_final

    def test_happy_path(self, pilot):
        pilot.advance(PilotState.PMGR_LAUNCHING)
        pilot.advance(PilotState.ACTIVE)
        assert pilot.is_active
        pilot.advance(PilotState.DONE)
        assert pilot.is_final

    def test_illegal_transition(self, pilot):
        with pytest.raises(StateTransitionError):
            pilot.advance(PilotState.ACTIVE)

    def test_history_recorded(self, env, pilot):
        env._now = 7.0
        pilot.advance(PilotState.PMGR_LAUNCHING)
        assert pilot.state_history == [
            (0.0, PilotState.NEW), (7.0, PilotState.PMGR_LAUNCHING)]


class TestEvents:
    def test_active_event_fires_once(self, pilot):
        ev = pilot.active_event()
        pilot.advance(PilotState.PMGR_LAUNCHING)
        assert not ev.triggered
        pilot.advance(PilotState.ACTIVE)
        assert ev.triggered

    def test_active_event_after_the_fact(self, pilot):
        pilot.advance(PilotState.PMGR_LAUNCHING)
        pilot.advance(PilotState.ACTIVE)
        assert pilot.active_event().triggered

    def test_completion_event(self, pilot):
        ev = pilot.completion_event()
        pilot.advance(PilotState.PMGR_LAUNCHING)
        pilot.advance(PilotState.FAILED)
        assert ev.triggered
        assert ev.value == PilotState.FAILED

    def test_service_requires_active(self, pilot):
        from repro.core import ServiceDescription

        with pytest.raises(ConfigurationError):
            pilot.start_service(ServiceDescription())

    def test_repr(self, pilot):
        text = repr(pilot)
        assert "pilot.test" in text
        assert "NEW" in text
