"""Tests for pilot walltime enforcement."""

import pytest

from repro.core import (
    PartitionSpec,
    PilotDescription,
    PilotState,
    Session,
    TaskDescription,
    TaskState,
)
from repro.platform import generic


@pytest.fixture
def session():
    return Session(cluster=generic(4, 8, 2), seed=31)


class TestWalltime:
    def test_pilot_ends_at_walltime(self, session):
        pmgr = session.pilot_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, walltime=100.0,
            partitions=(PartitionSpec("flux"),)))
        session.run(pilot.completion_event())
        assert pilot.state == PilotState.DONE
        # Walltime counts from activation (~20 s flux bootstrap).
        assert 100.0 <= session.now <= 140.0

    def test_unfinished_tasks_canceled(self, session):
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, walltime=60.0, partitions=(PartitionSpec("flux"),)))
        tmgr.add_pilot(pilot)
        # 32 cores; 64 tasks of 40 s: the second wave cannot finish
        # within 60 s of walltime.
        tasks = tmgr.submit_tasks([TaskDescription(duration=40.0)
                                   for _ in range(64)])
        session.run(tmgr.wait_tasks())
        states = {t.state for t in tasks}
        assert TaskState.DONE in states
        assert TaskState.CANCELED in states or TaskState.FAILED in states
        assert all(t.is_final for t in tasks)

    def test_fast_workload_unaffected(self, session):
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, walltime=10_000.0, partitions=(PartitionSpec("flux"),)))
        tmgr.add_pilot(pilot)
        tasks = tmgr.submit_tasks([TaskDescription(duration=5.0)
                                   for _ in range(10)])
        session.run(tmgr.wait_tasks())
        assert all(t.succeeded for t in tasks)
        assert pilot.is_active

    def test_expiry_is_noop_after_cancellation(self, session):
        pmgr = session.pilot_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=2, walltime=50.0))
        session.run(pilot.active_event())
        pmgr.cancel_pilots()
        session.run()
        assert pilot.state == PilotState.CANCELED
