"""Tests for task cancellation across all backends and task phases."""

import pytest

from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
    TaskState,
)
from repro.platform import generic


def launch(backend, seed=41, nodes=4):
    session = Session(cluster=generic(nodes, 8, 2), seed=seed)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=nodes, partitions=(PartitionSpec(backend),)))
    tmgr.add_pilot(pilot)
    session.run(pilot.active_event())
    return session, tmgr, pilot


@pytest.mark.parametrize("backend", ["srun", "flux", "dragon"])
class TestCancelRunning:
    def test_running_task_canceled_and_resources_freed(self, backend):
        session, tmgr, pilot = launch(backend)
        mode = "function" if backend == "dragon" else "executable"
        tasks = tmgr.submit_tasks([TaskDescription(mode=mode, duration=1e6)
                                   for _ in range(8)])
        session.run(until=session.now + 30.0)
        assert all(t.state == TaskState.AGENT_EXECUTING for t in tasks)
        assert tmgr.cancel_tasks() == 8
        session.run(until=session.now + 30.0)
        assert all(t.state == TaskState.CANCELED for t in tasks)
        # The allocation fully recovers: a fresh workload completes.
        survivors = tmgr.submit_tasks([
            TaskDescription(mode=mode, duration=1.0) for _ in range(16)])
        session.run(tmgr.wait_tasks(survivors))
        assert all(t.succeeded for t in survivors)

    def test_cancel_is_idempotent(self, backend):
        session, tmgr, pilot = launch(backend)
        task = tmgr.submit_tasks(TaskDescription(duration=1e6))
        session.run(until=session.now + 30.0)
        assert tmgr.cancel_tasks([task]) == 1
        assert tmgr.cancel_tasks([task]) == 0
        assert task.state == TaskState.CANCELED


class TestCancelQueued:
    def test_cancel_before_dispatch(self):
        session, tmgr, pilot = launch("flux")
        # 32 cores; 200 long tasks: most stay queued.
        tasks = tmgr.submit_tasks([TaskDescription(duration=1e6)
                                   for _ in range(200)])
        session.run(until=session.now + 30.0)
        tmgr.cancel_tasks()
        session.run(until=session.now + 60.0)
        assert all(t.state == TaskState.CANCELED for t in tasks)

    def test_cancel_subset_leaves_rest_running(self):
        session, tmgr, pilot = launch("flux")
        keep = tmgr.submit_tasks([TaskDescription(duration=100.0)
                                  for _ in range(8)])
        drop = tmgr.submit_tasks([TaskDescription(duration=100.0)
                                  for _ in range(8)])
        session.run(until=session.now + 10.0)
        tmgr.cancel_tasks(drop)
        session.run(tmgr.wait_tasks(keep))
        assert all(t.succeeded for t in keep)
        assert all(t.state == TaskState.CANCELED for t in drop)

    def test_completed_tasks_not_counted(self):
        session, tmgr, pilot = launch("flux")
        tasks = tmgr.submit_tasks([TaskDescription(duration=1.0)
                                   for _ in range(4)])
        session.run(tmgr.wait_tasks())
        assert tmgr.cancel_tasks() == 0
        assert all(t.succeeded for t in tasks)


class TestSubstrateCancellation:
    def test_flux_cancel_pending_job(self, env, rng):
        from repro.flux import FluxInstance, Jobspec
        from repro.platform import FRONTIER_LATENCIES

        alloc = generic(1).allocate_nodes(1)  # 8 cores
        inst = FluxInstance(env, alloc, FRONTIER_LATENCIES, rng)
        env.run(env.process(inst.start()))
        blockers = [inst.submit(Jobspec(command="x", duration=1e6))
                    for _ in range(8)]
        queued = inst.submit(Jobspec(command="y", duration=1e6))
        env.run(until=env.now + 30.0)
        assert inst.cancel(queued.job_id)
        env.run(until=env.now + 5.0)
        assert queued.failed

    def test_flux_cancel_unknown_job(self, env, rng):
        from repro.flux import FluxInstance
        from repro.platform import FRONTIER_LATENCIES

        alloc = generic(1).allocate_nodes(1)
        inst = FluxInstance(env, alloc, FRONTIER_LATENCIES, rng)
        env.run(env.process(inst.start()))
        assert inst.cancel("nonexistent") is False

    def test_flux_urgency_change_reorders(self, env, rng):
        from repro.flux import FluxInstance, Jobspec
        from repro.platform import FRONTIER_LATENCIES, ResourceSpec

        alloc = generic(1).allocate_nodes(1)  # 8 cores
        inst = FluxInstance(env, alloc, FRONTIER_LATENCIES, rng)
        env.run(env.process(inst.start()))
        blockers = [inst.submit(Jobspec(command="b", duration=50.0,
                                        resources=ResourceSpec(cores=8)))]
        first = inst.submit(Jobspec(command="first", duration=1.0))
        second = inst.submit(Jobspec(command="second", duration=1.0))
        env.run(until=env.now + 10.0)  # both queued behind the blocker
        inst.change_urgency(second.job_id, 30)
        env.run()
        assert second.start_time < first.start_time

    def test_flux_stats_snapshot(self, env, rng):
        from repro.flux import FluxInstance, Jobspec
        from repro.platform import FRONTIER_LATENCIES

        alloc = generic(1).allocate_nodes(1)
        inst = FluxInstance(env, alloc, FRONTIER_LATENCIES, rng)
        env.run(env.process(inst.start()))
        for _ in range(3):
            inst.submit(Jobspec(command="x", duration=1.0))
        env.run()
        stats = inst.stats()
        assert stats["submitted"] == 3
        assert stats["completed"] == 3
        assert stats["free_cores"] == stats["total_cores"]

    def test_dragon_cancel_running(self, env, rng):
        from repro.dragon import DragonRuntime, DragonTask
        from repro.platform import FRONTIER_LATENCIES

        alloc = generic(2).allocate_nodes(2)
        rt = DragonRuntime(env, alloc, FRONTIER_LATENCIES, rng)
        env.run(env.process(rt.start()))
        rt.submit(DragonTask(task_id="victim", duration=1e6))
        env.run(until=env.now + 5.0)
        assert rt.cancel("victim")
        completions = []

        def watch(env, rt):
            completions.append((yield rt.completion_pipe.recv()))

        env.process(watch(env, rt))
        env.run(until=env.now + 5.0)
        assert completions and not completions[0].ok

    def test_dragon_cancel_completed_returns_false(self, env, rng):
        from repro.dragon import DragonRuntime, DragonTask
        from repro.platform import FRONTIER_LATENCIES

        alloc = generic(2).allocate_nodes(2)
        rt = DragonRuntime(env, alloc, FRONTIER_LATENCIES, rng)
        env.run(env.process(rt.start()))
        rt.submit(DragonTask(task_id="done", duration=0.5))
        env.run(until=env.now + 10.0)
        assert rt.cancel("done") is False
