"""Tests for multi-pilot sessions (shared machine, shared srun, shared
trace)."""

import pytest

from repro.analytics import startup_overheads
from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
)
from repro.platform import generic


class TestConcurrentPilots:
    def test_two_pilots_two_managers(self):
        session = Session(cluster=generic(8, 8, 2), seed=84)
        pmgr = session.pilot_manager()
        tmgr_a, tmgr_b = session.task_manager(), session.task_manager()
        pilot_a = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("flux"),)))
        pilot_b = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("dragon"),)))
        tmgr_a.add_pilot(pilot_a)
        tmgr_b.add_pilot(pilot_b)
        tasks_a = tmgr_a.submit_tasks([TaskDescription(duration=5.0)
                                       for _ in range(20)])
        tasks_b = tmgr_b.submit_tasks([
            TaskDescription(mode="function", duration=5.0)
            for _ in range(20)])
        session.run(session.env.all_of([tmgr_a.wait_tasks(),
                                        tmgr_b.wait_tasks()]))
        assert all(t.succeeded for t in tasks_a + tasks_b)
        assert {t.backend for t in tasks_a} == {"flux"}
        assert {t.backend for t in tasks_b} == {"dragon"}

    def test_pilots_share_one_trace(self):
        session = Session(cluster=generic(8, 8, 2), seed=85)
        pmgr = session.pilot_manager()
        a = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("flux"),)))
        b = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("dragon"),)))
        session.run(session.env.all_of([a.active_event(),
                                        b.active_event()]))
        kinds = {ev.meta.get("kind")
                 for ev in session.profiler.events_named("backend_ready")}
        assert {"flux", "dragon"} <= kinds

    def test_srun_ceiling_shared_across_pilots(self):
        """The 112-srun ceiling is machine-wide: two srun pilots split
        it, not get 112 each."""
        from repro.platform import FRONTIER_LATENCIES

        lat = FRONTIER_LATENCIES.with_overrides(srun_ceiling=8)
        session = Session(cluster=generic(8, 8, 2), latencies=lat, seed=86)
        pmgr = session.pilot_manager()
        tmgrs, all_tasks = [], []
        for _ in range(2):
            pilot = pmgr.submit_pilots(PilotDescription(
                nodes=4, partitions=(PartitionSpec("srun"),)))
            tmgr = session.task_manager()
            tmgr.add_pilot(pilot)
            all_tasks.extend(tmgr.submit_tasks(
                [TaskDescription(duration=50.0) for _ in range(16)]))
            tmgrs.append(tmgr)
        session.run(session.env.all_of([t.wait_tasks() for t in tmgrs]))
        assert all(t.succeeded for t in all_tasks)
        # 32 tasks through an 8-slot machine-wide ceiling at 50 s each:
        # at least 4 waves -> makespan >= 200 s.
        starts = sorted(t.exec_start for t in all_tasks)
        stops = sorted(t.exec_stop for t in all_tasks)
        assert stops[-1] - starts[0] >= 150.0

    def test_pilot_walltime_returns_nodes_for_third_pilot(self):
        session = Session(cluster=generic(4, 8, 2), seed=87)
        pmgr = session.pilot_manager()
        a = pmgr.submit_pilots(PilotDescription(nodes=3, walltime=50.0))
        b = pmgr.submit_pilots(PilotDescription(nodes=3, walltime=50.0))
        session.run(b.active_event())
        # b had to wait for a's walltime (3+3 > 4 nodes).
        assert session.now >= 50.0
