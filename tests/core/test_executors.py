"""Per-executor behavioural tests (timings, concurrency, accounting)."""

import pytest

from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
)
from repro.platform import DETERMINISTIC_LATENCIES, ResourceSpec, generic


def run_workload(backend, descs, nodes=4, seed=0, n_instances=1,
                 latencies=None, cluster=None):
    session = Session(
        cluster=cluster or generic(nodes, cores_per_node=8, gpus_per_node=2),
        latencies=latencies or DETERMINISTIC_LATENCIES, seed=seed)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=nodes,
        partitions=(PartitionSpec(backend, n_instances=n_instances),)))
    tmgr.add_pilot(pilot)
    tasks = tmgr.submit_tasks(descs)
    session.run(tmgr.wait_tasks())
    return session, pilot, tasks


class TestSrunExecutor:
    def test_tasks_complete_with_exact_duration(self):
        _, _, tasks = run_workload(
            "srun", [TaskDescription(duration=5.0) for _ in range(4)])
        for t in tasks:
            assert t.succeeded
            assert t.exec_stop - t.exec_start == pytest.approx(5.0)

    def test_partition_capacity_respected(self):
        # 4 nodes x 8 cores = 32 cores; 64 single-core 10 s tasks need
        # exactly two execution waves.
        session, _, tasks = run_workload(
            "srun", [TaskDescription(duration=10.0) for _ in range(64)])
        starts = sorted(t.exec_start for t in tasks)
        assert starts[32] >= starts[0] + 10.0

    def test_multinode_task_placement(self):
        _, pilot, tasks = run_workload(
            "srun", [TaskDescription(duration=1.0,
                                     resources=ResourceSpec(cores=20))])
        assert tasks[0].succeeded
        alloc = pilot.agent.executors["srun"].allocation
        assert alloc.free_cores == alloc.total_cores

    def test_executor_counters(self):
        _, pilot, _ = run_workload(
            "srun", [TaskDescription(duration=1.0) for _ in range(3)])
        ex = pilot.agent.executors["srun"]
        assert ex.n_submitted == 3
        assert ex.n_active == 0


class TestFluxExecutor:
    def test_tasks_complete(self):
        _, pilot, tasks = run_workload(
            "flux", [TaskDescription(duration=2.0) for _ in range(10)],
            n_instances=2)
        assert all(t.succeeded for t in tasks)
        ex = pilot.agent.executors["flux"]
        assert ex.n_instances == 2
        assert sum(i.n_completed for i in ex.hierarchy.instances) == 10

    def test_instances_balanced(self):
        _, pilot, _ = run_workload(
            "flux", [TaskDescription(duration=2.0) for _ in range(40)],
            n_instances=4)
        counts = [i.n_submitted for i in
                  pilot.agent.executors["flux"].hierarchy.instances]
        assert max(counts) - min(counts) <= 2

    def test_unsatisfiable_task_fails_cleanly(self):
        _, _, tasks = run_workload(
            "flux", [TaskDescription(resources=ResourceSpec(cores=10_000))])
        assert tasks[0].state == "FAILED"

    def test_exec_interval_matches_flux_job(self):
        _, pilot, tasks = run_workload(
            "flux", [TaskDescription(duration=7.0)])
        t = tasks[0]
        assert t.exec_stop - t.exec_start == pytest.approx(7.0)


class TestDragonExecutor:
    def test_function_tasks_complete(self):
        _, pilot, tasks = run_workload(
            "dragon",
            [TaskDescription(mode="function", duration=1.0)
             for _ in range(20)], n_instances=2)
        assert all(t.succeeded for t in tasks)
        ex = pilot.agent.executors["dragon"]
        assert len(ex.runtimes) == 2

    def test_exec_tasks_complete(self):
        _, _, tasks = run_workload(
            "dragon", [TaskDescription(mode="executable", duration=1.0,
                                       backend="dragon") for _ in range(10)])
        assert all(t.succeeded for t in tasks)

    def test_runtimes_balanced(self):
        _, pilot, _ = run_workload(
            "dragon",
            [TaskDescription(mode="function", duration=5.0)
             for _ in range(40)], n_instances=4)
        counts = [rt.n_submitted for rt in
                  pilot.agent.executors["dragon"].runtimes]
        assert max(counts) - min(counts) <= 2

    def test_warm_pool_reused_for_functions(self):
        _, pilot, _ = run_workload(
            "dragon",
            [TaskDescription(mode="function", duration=0.1)
             for _ in range(50)])
        pool = pilot.agent.executors["dragon"].runtimes[0].pool
        assert pool.n_warm_dispatch > 0
