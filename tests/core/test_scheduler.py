"""Unit tests for the agent's partition scheduler."""

import pytest

from repro.core.agent.scheduler import PartitionScheduler
from repro.exceptions import SchedulingError
from repro.platform import ResourceSpec, generic
from repro.sim import Environment


@pytest.fixture
def sched(env):
    alloc = generic(2).allocate_nodes(2)  # 16 cores
    return PartitionScheduler(env, alloc)


class TestPlacement:
    def test_immediate_grant(self, env, sched):
        ev = sched.place(ResourceSpec(cores=4))
        assert ev.triggered
        placements = ev.value
        assert sum(p.cores for p in placements) == 4

    def test_queues_when_full(self, env, sched):
        sched.place(ResourceSpec(cores=16))
        ev = sched.place(ResourceSpec(cores=1))
        assert not ev.triggered
        assert sched.queue_depth == 1

    def test_free_drains_fifo(self, env, sched):
        first = sched.place(ResourceSpec(cores=16))
        ev1 = sched.place(ResourceSpec(cores=8))
        ev2 = sched.place(ResourceSpec(cores=8))
        sched.free(first.value)
        assert ev1.triggered and ev2.triggered

    def test_strict_fifo_blocks_small_behind_big(self, env, sched):
        hold = sched.place(ResourceSpec(cores=12))
        big = sched.place(ResourceSpec(cores=16))     # cannot fit now
        small = sched.place(ResourceSpec(cores=1))    # could fit, but FIFO
        assert not big.triggered
        assert not small.triggered
        sched.free(hold.value)
        assert big.triggered
        assert small.triggered is False or sched.allocation.free_cores == 0

    def test_counts(self, env, sched):
        sched.place(ResourceSpec(cores=1))
        sched.place(ResourceSpec(cores=1))
        assert sched.n_placed == 2

    def test_cancel_pending_fails_waiters(self, env, sched):
        sched.place(ResourceSpec(cores=16))
        ev = sched.place(ResourceSpec(cores=1))
        sched.cancel_pending()
        assert ev.triggered
        assert not ev._ok
        assert isinstance(ev._value, SchedulingError)

    def test_full_cycle_restores_capacity(self, env, sched):
        evs = [sched.place(ResourceSpec(cores=4)) for _ in range(4)]
        for ev in evs:
            sched.free(ev.value)
        assert sched.allocation.free_cores == 16
