"""Unit/integration tests for the Agent: bootstrap, routing, retries,
staging and failover."""

import pytest

from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
    TaskState,
)
from repro.core.agent.executor_dragon import DragonExecutor
from repro.exceptions import ConfigurationError
from repro.platform import FRONTIER_LATENCIES, ResourceSpec, generic


def launch(session, partitions):
    pmgr = session.pilot_manager()
    tmgr = session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(nodes=8,
                                                partitions=partitions))
    tmgr.add_pilot(pilot)
    return pilot, tmgr


class TestBootstrap:
    def test_all_backends_come_up(self, session):
        pilot, _ = launch(session, (
            PartitionSpec("flux", n_instances=2, nodes=4),
            PartitionSpec("dragon", n_instances=2, nodes=2),
            PartitionSpec("srun", nodes=2),
        ))
        session.run(pilot.active_event())
        assert sorted(pilot.agent.available_backends) == [
            "dragon", "flux", "srun"]

    def test_duplicate_backend_fails_pilot(self, session):
        pilot, _ = launch(session, (
            PartitionSpec("flux", nodes=4),
            PartitionSpec("flux", nodes=4),
        ))
        session.run(pilot.completion_event())
        assert pilot.state == "FAILED"

    def test_partition_nodes_are_disjoint(self, session):
        pilot, _ = launch(session, (
            PartitionSpec("flux", nodes=5),
            PartitionSpec("dragon", nodes=3),
        ))
        session.run(pilot.active_event())
        flux_nodes = {n.index for n in
                      pilot.agent.executors["flux"].allocation.nodes}
        dragon_nodes = {n.index for n in
                        pilot.agent.executors["dragon"].allocation.nodes}
        assert flux_nodes.isdisjoint(dragon_nodes)
        assert len(flux_nodes) == 5 and len(dragon_nodes) == 3


class TestRoutingIntegration:
    def test_mixed_workload_routes_by_type(self, session):
        pilot, tmgr = launch(session, (
            PartitionSpec("flux", n_instances=2),
            PartitionSpec("dragon", n_instances=2),
        ))
        tasks = tmgr.submit_tasks(
            [TaskDescription(mode="executable", duration=1.0)
             for _ in range(10)] +
            [TaskDescription(mode="function", duration=1.0)
             for _ in range(10)])
        session.run(tmgr.wait_tasks())
        backends = {t.description.mode: t.backend for t in tasks}
        assert backends["executable"] == "flux"
        assert backends["function"] == "dragon"

    def test_backend_hint_respected(self, session):
        pilot, tmgr = launch(session, (
            PartitionSpec("flux", n_instances=1),
            PartitionSpec("dragon", n_instances=1),
        ))
        task = tmgr.submit_tasks(TaskDescription(
            mode="executable", backend="dragon", duration=1.0))
        session.run(tmgr.wait_tasks())
        assert task.backend == "dragon"
        assert task.succeeded

    def test_unroutable_task_fails(self, session):
        pilot, tmgr = launch(session, (PartitionSpec("srun"),))
        task = tmgr.submit_tasks(TaskDescription(mode="function"))
        session.run(tmgr.wait_tasks())
        assert task.state == TaskState.FAILED
        assert "no deployed backend" in task.exception


class TestStaging:
    def test_staging_states_traversed(self, session):
        pilot, tmgr = launch(session, (PartitionSpec("flux"),))
        task = tmgr.submit_tasks(TaskDescription(
            duration=1.0, input_staging=3, output_staging=2))
        session.run(tmgr.wait_tasks())
        states = [s for _, s in task.state_history]
        assert TaskState.AGENT_STAGING_INPUT in states
        assert TaskState.AGENT_STAGING_OUTPUT in states
        assert task.succeeded
        assert pilot.agent.stager_in.n_items == 3
        assert pilot.agent.stager_out.n_items == 2

    def test_staging_skipped_without_directives(self, session):
        pilot, tmgr = launch(session, (PartitionSpec("flux"),))
        task = tmgr.submit_tasks(TaskDescription(duration=1.0))
        session.run(tmgr.wait_tasks())
        states = [s for _, s in task.state_history]
        assert TaskState.AGENT_STAGING_INPUT not in states
        assert TaskState.AGENT_STAGING_OUTPUT not in states


class TestRetries:
    def test_failed_task_without_retries_is_final(self, session):
        pilot, tmgr = launch(session, (PartitionSpec("flux"),))
        task = tmgr.submit_tasks(TaskDescription(duration=1.0, fail=True))
        session.run(tmgr.wait_tasks())
        assert task.state == TaskState.FAILED
        assert task.retries_left == 0

    def test_retries_consumed_then_fail(self, session):
        pilot, tmgr = launch(session, (PartitionSpec("flux"),))
        task = tmgr.submit_tasks(TaskDescription(
            duration=1.0, fail=True, retries=2))
        session.run(tmgr.wait_tasks())
        assert task.state == TaskState.FAILED
        # attempts counts every finished attempt: first try + 2 retries.
        assert task.attempts == 3
        assert task.retries_left == 0

    def test_retry_happens_on_each_backend_kind(self, session):
        for backend in ("srun", "flux", "dragon"):
            s = Session(cluster=generic(8, 8, 2), seed=7)
            pilot, tmgr = launch(s, (PartitionSpec(backend),))
            task = tmgr.submit_tasks(TaskDescription(
                duration=1.0, fail=True, retries=1, backend=backend))
            s.run(tmgr.wait_tasks())
            assert task.attempts == 2, backend
            assert task.state == TaskState.FAILED, backend


class TestDragonFailover:
    def test_dragon_startup_timeout_fails_backend(self, small_cluster):
        session = Session(cluster=small_cluster, seed=3)
        pmgr = session.pilot_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("dragon"),)))
        # Force the runtime to hang during bootstrap.
        original = DragonExecutor.__init__

        def hanging_init(self, agent, allocation, n_instances=1,
                         fail_startup=False):
            original(self, agent, allocation, n_instances=n_instances,
                     fail_startup=True)

        DragonExecutor.__init__ = hanging_init
        try:
            session.run(pilot.completion_event())
        finally:
            DragonExecutor.__init__ = original
        assert pilot.state == "FAILED"
        # The watchdog fired at the configured timeout, not never.
        assert session.now >= FRONTIER_LATENCIES.dragon_startup_timeout

    def test_dragon_timeout_with_flux_fallback(self, small_cluster):
        """With a second backend deployed, the pilot survives and the
        executable tasks run via Flux."""
        session = Session(cluster=small_cluster, seed=3)
        pmgr = session.pilot_manager()
        tmgr = session.task_manager()
        original = DragonExecutor.__init__

        def hanging_init(self, agent, allocation, n_instances=1,
                         fail_startup=False):
            original(self, agent, allocation, n_instances=n_instances,
                     fail_startup=True)

        DragonExecutor.__init__ = hanging_init
        try:
            pilot = pmgr.submit_pilots(PilotDescription(
                nodes=8, partitions=(PartitionSpec("flux", nodes=4),
                                     PartitionSpec("dragon", nodes=4))))
            tmgr.add_pilot(pilot)
            session.run(pilot.active_event())
        finally:
            DragonExecutor.__init__ = original
        assert pilot.agent.available_backends == ["flux"]
        # Function tasks fall back to Flux now.
        task = tmgr.submit_tasks(TaskDescription(mode="function",
                                                 duration=1.0))
        session.run(tmgr.wait_tasks())
        assert task.succeeded
        assert task.backend == "flux"
