"""Unit tests for task-type-aware backend routing."""

import pytest

from repro.core import TaskDescription
from repro.core.agent.router import Router
from repro.exceptions import SchedulingError
from repro.platform import ResourceSpec

CPN, GPN = 56, 8


class TestHints:
    def test_explicit_hint_wins(self):
        router = Router(["srun", "flux", "dragon"])
        td = TaskDescription(mode="function", backend="srun")
        assert router.route(td, CPN, GPN) == "srun"

    def test_unavailable_hint_raises(self):
        router = Router(["flux"])
        with pytest.raises(SchedulingError):
            router.route(TaskDescription(backend="dragon"), CPN, GPN)


class TestFunctionRouting:
    def test_functions_prefer_dragon(self):
        router = Router(["srun", "flux", "dragon"])
        assert router.route(TaskDescription(mode="function"), CPN, GPN) == "dragon"

    def test_functions_fall_back_to_flux(self):
        router = Router(["srun", "flux"])
        assert router.route(TaskDescription(mode="function"), CPN, GPN) == "flux"

    def test_functions_never_route_to_srun(self):
        router = Router(["srun"])
        with pytest.raises(SchedulingError):
            router.route(TaskDescription(mode="function"), CPN, GPN)


class TestExecutableRouting:
    def test_executables_prefer_flux(self):
        router = Router(["srun", "flux", "dragon"])
        assert router.route(TaskDescription(), CPN, GPN) == "flux"

    def test_executables_fall_back_to_srun(self):
        router = Router(["srun", "dragon"])
        assert router.route(TaskDescription(), CPN, GPN) == "srun"

    def test_executables_can_use_dragon_last(self):
        router = Router(["dragon"])
        assert router.route(TaskDescription(), CPN, GPN) == "dragon"


class TestMultiNodeRouting:
    def test_multi_node_needs_coscheduling(self):
        router = Router(["srun", "flux", "dragon"])
        td = TaskDescription(resources=ResourceSpec(cores=7168))
        assert router.route(td, CPN, GPN) == "flux"

    def test_multi_node_falls_back_to_srun_not_dragon(self):
        router = Router(["srun", "dragon"])
        td = TaskDescription(resources=ResourceSpec(cores=7168))
        assert router.route(td, CPN, GPN) == "srun"

    def test_multi_node_without_capable_backend_raises(self):
        router = Router(["dragon"])
        td = TaskDescription(resources=ResourceSpec(cores=7168))
        with pytest.raises(SchedulingError):
            router.route(td, CPN, GPN)

    def test_exclusive_nodes_treated_as_multi_node(self):
        router = Router(["srun", "dragon", "flux"])
        td = TaskDescription(resources=ResourceSpec(cores=1,
                                                    exclusive_nodes=True))
        assert router.route(td, CPN, GPN) == "flux"

    def test_gpu_heavy_single_node_is_not_multi_node(self):
        router = Router(["dragon"])
        td = TaskDescription(resources=ResourceSpec(cores=1, gpus=8))
        assert router.route(td, CPN, GPN) == "dragon"
