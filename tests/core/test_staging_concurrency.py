"""Tests for staging concurrency and contention behaviour."""

import pytest

from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
)
from repro.core.agent.staging import Stager
from repro.platform import DETERMINISTIC_LATENCIES, SharedFilesystem, generic
from repro.sim import Environment, RngStreams


class TestStagerUnit:
    def test_zero_items_is_noop(self, env, rng):
        stager = Stager(env, DETERMINISTIC_LATENCIES, rng)
        env.run(env.process(stager.stage(0)))
        assert env.now == 0.0
        assert stager.n_items == 0

    def test_worker_pool_limits_concurrency(self, env, rng):
        lat = DETERMINISTIC_LATENCIES.with_overrides(
            staging_cost_per_item=1.0)
        stager = Stager(env, lat, rng, concurrency=2)
        procs = [env.process(stager.stage(1)) for _ in range(6)]
        env.run(env.all_of(procs))
        # 6 items, 2 workers, 1 s each -> 3 waves.
        assert env.now == pytest.approx(3.0)
        assert stager.n_items == 6

    def test_filesystem_transfers_accounted(self, env, rng):
        fs = SharedFilesystem(env, aggregate_bandwidth=1e9,
                              access_latency=0.0)
        stager = Stager(env, DETERMINISTIC_LATENCIES, rng, filesystem=fs)
        env.run(env.process(stager.stage(2, item_mb=100.0)))
        assert fs.n_transfers == 2
        assert stager.bytes_staged == pytest.approx(2 * 100 * 1024 * 1024)

    def test_no_filesystem_means_no_transfers(self, env, rng):
        stager = Stager(env, DETERMINISTIC_LATENCIES, rng, filesystem=None)
        env.run(env.process(stager.stage(2, item_mb=100.0)))
        assert stager.bytes_staged == 0.0


class TestStagingUnderLoad:
    def test_many_staging_tasks_share_the_filesystem(self):
        session = Session(cluster=generic(4, 8, 2), seed=77)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("flux"),)))
        tmgr.add_pilot(pilot)
        tasks = tmgr.submit_tasks([
            TaskDescription(duration=1.0, input_staging=1,
                            staging_item_mb=500.0)
            for _ in range(16)])
        session.run(tmgr.wait_tasks())
        assert all(t.succeeded for t in tasks)
        assert session.filesystem.n_transfers == 16
        # Contention pushed at least some transfers past the
        # uncontended single-transfer time.
        single = session.filesystem.transfer_time(500 * 1024 * 1024, 1)
        assert session.now > single

    def test_staging_phases_visible_in_summary(self):
        from repro.analytics import summarize

        session = Session(cluster=generic(4, 8, 2), seed=78)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("flux"),)))
        tmgr.add_pilot(pilot)
        tasks = tmgr.submit_tasks([
            TaskDescription(duration=2.0, input_staging=2,
                            staging_item_mb=100.0)
            for _ in range(8)])
        session.run(tmgr.wait_tasks())
        summary = summarize(tasks)
        queue_phase = next(p for p in summary.phases
                           if p.name.startswith("queue"))
        # Staging happens between TMGR and AGENT_SCHEDULING: the queue
        # phase includes the transfer time.
        assert queue_phase.mean > 0.1
