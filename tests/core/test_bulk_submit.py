"""Bulk task submission: the batched admission pipeline.

``TaskManager.submit_tasks(bulk=True)`` constructs tasks through
:func:`~repro.core.task.build_tasks` (shared frozen descriptions,
shared payload/meta dicts) and admits whole waves through
``Agent.submit_bulk`` — one chained kernel callback per wave instead
of one queue entry per task.  Byte-identical trace equivalence with
the legacy path is covered by the property suite and the pinned
determinism digests; these tests cover the machinery's edges.
"""

import pytest

from repro.core import (
    PilotDescription,
    Session,
    TaskDescription,
    TaskState,
)
from repro.core.task import Task, build_tasks
from repro.platform import FRONTIER_LATENCIES, generic


def launch(session, nodes=8, **pilot_kwargs):
    pmgr = session.pilot_manager()
    tmgr = session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(nodes=nodes, **pilot_kwargs))
    tmgr.add_pilot(pilot)
    return pilot, tmgr


class TestBuildTasks:
    def test_shared_description_shares_payload(self, session):
        desc = TaskDescription(duration=1.0)
        tasks = build_tasks(session.env, ["t1", "t2"], [desc] * 2)
        assert tasks[0].description is tasks[1].description
        assert tasks[0]._payload is tasks[1]._payload

    def test_tasks_mutate_independently(self, session):
        desc = TaskDescription(duration=1.0)
        t1, t2 = build_tasks(session.env, ["t1", "t2"], [desc] * 2)
        t1.advance(TaskState.TMGR_SCHEDULING, note="only t1")
        assert t1.state == TaskState.TMGR_SCHEDULING
        assert t2.state == TaskState.NEW
        assert t2.state_history == [(0.0, TaskState.NEW)]

    def test_created_events_recorded(self, session):
        desc = TaskDescription(duration=1.0)
        build_tasks(session.env, ["t1", "t2"], [desc] * 2,
                    profiler=session.profiler)
        assert len(session.profiler.events_named("task_created")) == 2

    def test_length_mismatch_rejected(self, session):
        with pytest.raises(ValueError):
            build_tasks(session.env, ["t1"], [TaskDescription()] * 2)


class TestBulkSubmission:
    def test_bulk_wave_completes(self, session):
        pilot, tmgr = launch(session)
        tasks = tmgr.submit_tasks([TaskDescription(duration=1.0)] * 20,
                                  bulk=True)
        session.run(tmgr.wait_tasks())
        assert len(tasks) == 20
        assert all(t.succeeded for t in tasks)

    def test_bulk_before_bootstrap_is_backlogged(self, session):
        """Waves submitted before the agent is alive are admitted at
        bootstrap, exactly like the legacy intake queue."""
        pilot, tmgr = launch(session)
        tasks = tmgr.submit_tasks([TaskDescription(duration=1.0)] * 8,
                                  bulk=True)
        assert pilot.agent._bulk_backlog or pilot.agent._bulk_pending
        session.run(tmgr.wait_tasks())
        assert all(t.succeeded for t in tasks)
        assert not pilot.agent._bulk_backlog
        assert not pilot.agent._bulk_pending

    def test_mixed_bulk_and_legacy(self, session):
        pilot, tmgr = launch(session)
        bulk = tmgr.submit_tasks([TaskDescription(duration=1.0)] * 5,
                                 bulk=True)
        legacy = tmgr.submit_tasks([TaskDescription(duration=1.0)] * 5)
        session.run(tmgr.wait_tasks())
        assert all(t.succeeded for t in bulk + legacy)

    def test_bulk_staging_path(self, session):
        """Tasks with input staging must still route through the
        staging handler, not straight to the executor."""
        pilot, tmgr = launch(session)
        tasks = tmgr.submit_tasks(
            [TaskDescription(duration=1.0, input_staging=4)] * 4,
            bulk=True)
        session.run(tmgr.wait_tasks())
        assert all(t.succeeded for t in tasks)
        for t in tasks:
            states = [s for _, s in t.state_history]
            assert TaskState.AGENT_STAGING_INPUT in states

    def test_empty_bulk_is_noop(self, session):
        pilot, tmgr = launch(session)
        assert tmgr.submit_tasks([], bulk=True) == []

    def test_shutdown_cancels_pending_bulk(self, session):
        """Tasks admitted but not yet dispatched when the allocation's
        walltime expires are canceled at shutdown, like the legacy
        intake drain."""
        pilot, tmgr = launch(session, walltime=60.0)
        tasks = tmgr.submit_tasks([TaskDescription(duration=5000.0)] * 2000,
                                  bulk=True)
        session.run()
        assert not pilot.agent._bulk_backlog
        assert not pilot.agent._bulk_pending
        canceled = [t for t in tasks if t.state == TaskState.CANCELED]
        assert canceled, "a 2000-task backlog cannot drain in 60s"
