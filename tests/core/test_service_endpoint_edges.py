"""Edge cases for service endpoints and service/agent interplay."""

import pytest

from repro.core import (
    PartitionSpec,
    PilotDescription,
    ServiceDescription,
    Session,
    TaskDescription,
)
from repro.platform import ResourceSpec, generic


@pytest.fixture
def active(small_cluster=None):
    session = Session(cluster=generic(4, 8, 2), seed=111)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=4, partitions=(PartitionSpec("flux"),)))
    tmgr.add_pilot(pilot)
    session.run(pilot.active_event())
    return session, tmgr, pilot


class TestEndpointEdges:
    def test_calls_issued_before_start_complete_after(self, active):
        session, _, pilot = active
        service = pilot.start_service(ServiceDescription(
            name="svc", startup_time=20.0))
        replies = [service.endpoint.call(i) for i in range(5)]
        session.run(session.env.all_of(replies))
        assert [r.value for r in replies] == list(range(5))
        assert session.now >= 20.0

    def test_handler_exceptions_propagate(self, active):
        session, _, pilot = active

        def broken(_payload):
            raise RuntimeError("handler bug")

        service = pilot.start_service(ServiceDescription(name="svc"))
        service.endpoint.set_handler(broken)
        reply = service.endpoint.call()
        with pytest.raises(RuntimeError, match="handler bug"):
            session.run(reply)

    def test_two_services_compete_for_resources(self, active):
        session, _, pilot = active
        # The 4-node flux partition has 32 cores; two 20-core services
        # cannot both run: the second waits forever (queued).
        first = pilot.start_service(ServiceDescription(
            name="big1", resources=ResourceSpec(cores=20)))
        second = pilot.start_service(ServiceDescription(
            name="big2", resources=ResourceSpec(cores=20)))
        session.run(first.ready_event())
        session.run(until=session.now + 200.0)
        assert first.is_ready
        assert not second.is_ready
        # Stopping the first frees resources; the second comes up.
        first.stop()
        session.run(second.ready_event())
        assert second.is_ready

    def test_tasks_queue_behind_service_resources(self, active):
        session, tmgr, pilot = active
        service = pilot.start_service(ServiceDescription(
            name="hog", resources=ResourceSpec(cores=31)))
        session.run(service.ready_event())
        # Only one core left: 4 tasks serialize.
        tasks = tmgr.submit_tasks([TaskDescription(duration=10.0)
                                   for _ in range(4)])
        session.run(tmgr.wait_tasks(tasks))
        starts = sorted(t.exec_start for t in tasks)
        assert starts[-1] - starts[0] >= 30.0
