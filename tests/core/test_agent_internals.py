"""Tests for agent internals: dispatch cost, capacity, bookkeeping."""

import pytest

from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
)
from repro.platform import DETERMINISTIC_LATENCIES, generic


def active_agent(partitions, nodes=8, latencies=None, seed=42):
    session = Session(cluster=generic(nodes, 8, 2),
                      latencies=latencies or DETERMINISTIC_LATENCIES,
                      seed=seed)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=nodes, partitions=partitions))
    tmgr.add_pilot(pilot)
    session.run(pilot.active_event())
    return session, tmgr, pilot.agent


class TestDispatchCost:
    def test_base_plus_per_node(self):
        lat = DETERMINISTIC_LATENCIES
        _, _, agent = active_agent((PartitionSpec("srun"),), nodes=8)
        expected = lat.agent_dispatch_base + 8 * lat.agent_dispatch_per_node
        assert agent.dispatch_cost() == pytest.approx(expected)

    def test_flux_instances_add_coordination(self):
        lat = DETERMINISTIC_LATENCIES
        _, _, agent = active_agent(
            (PartitionSpec("flux", n_instances=4),), nodes=8)
        base = lat.agent_dispatch_base + 8 * lat.agent_dispatch_per_node
        expected = base * (1 + 4 * lat.agent_coord_per_instance)
        assert agent.dispatch_cost() == pytest.approx(expected)

    def test_dragon_instances_do_not_add_flux_penalty(self):
        lat = DETERMINISTIC_LATENCIES
        _, _, agent = active_agent(
            (PartitionSpec("dragon", n_instances=4),), nodes=8)
        expected = lat.agent_dispatch_base + 8 * lat.agent_dispatch_per_node
        assert agent.dispatch_cost() == pytest.approx(expected)


class TestMaxTaskCapacity:
    def test_flux_capacity_is_widest_instance(self):
        _, _, agent = active_agent(
            (PartitionSpec("flux", n_instances=4),), nodes=8)
        cores, gpus = agent.max_task_capacity()
        assert cores == 2 * 8  # 2 nodes x 8 cores per instance
        assert gpus == 2 * 2

    def test_srun_capacity_is_whole_partition(self):
        _, _, agent = active_agent((PartitionSpec("srun"),), nodes=8)
        cores, _ = agent.max_task_capacity()
        assert cores == 64

    def test_mixed_backends_take_max(self):
        _, _, agent = active_agent(
            (PartitionSpec("flux", n_instances=2, nodes=4),
             PartitionSpec("srun", nodes=4)), nodes=8)
        cores, _ = agent.max_task_capacity()
        # srun spans its 4-node partition (32 cores); each flux
        # instance has 2 nodes (16 cores).
        assert cores == 32


class TestBookkeeping:
    def test_counters_after_mixed_outcomes(self):
        session, tmgr, agent = active_agent((PartitionSpec("flux"),))
        tmgr.submit_tasks([TaskDescription(duration=1.0) for _ in range(6)])
        tmgr.submit_tasks([TaskDescription(duration=1.0, fail=True)
                           for _ in range(2)])
        session.run(tmgr.wait_tasks())
        assert agent.n_dispatched == 8
        assert agent.n_done == 6
        assert agent.n_failed == 2
        assert agent.n_canceled == 0
        assert not agent._inflight

    def test_cancel_counter(self):
        session, tmgr, agent = active_agent((PartitionSpec("flux"),))
        tmgr.submit_tasks([TaskDescription(duration=1e6) for _ in range(3)])
        session.run(until=session.now + 30.0)
        tmgr.cancel_tasks()
        assert agent.n_canceled == 3

    def test_retired_counter_feeds_dynamic_router(self):
        session, tmgr, agent = active_agent((PartitionSpec("flux"),))
        tmgr.submit_tasks([TaskDescription(duration=1.0) for _ in range(5)])
        session.run(tmgr.wait_tasks())
        assert agent.executors["flux"].n_retired == 5
        assert agent.executors["flux"].ready_at is not None
