"""Tests for load-aware dynamic backend selection."""

import pytest

from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
)
from repro.core.agent.router import DynamicRouter
from repro.exceptions import SchedulingError
from repro.platform import generic

CPN, GPN = 8, 2


class _FakeEnv:
    def __init__(self, now):
        self.now = now


class _FakeExecutor:
    """Stub exposing the DynamicRouter's inputs: backlog, history,
    readiness time and partition size."""

    def __init__(self, outstanding, cores, n_retired=0, ready_at=None,
                 now=100.0):
        self.outstanding = outstanding
        self.n_retired = n_retired
        self.ready_at = ready_at
        self.env = _FakeEnv(now)
        self.allocation = type("A", (), {"total_cores": cores})()


def _measured(outstanding, rate, cores=64, now=100.0):
    """Executor with an established drain rate [tasks/s]."""
    return _FakeExecutor(outstanding, cores,
                         n_retired=int(rate * now), ready_at=0.0, now=now)


class TestDynamicRouterUnit:
    def test_prefers_static_order_when_idle(self):
        router = DynamicRouter({
            "flux": _FakeExecutor(0, 64),
            "srun": _FakeExecutor(0, 64),
            "dragon": _FakeExecutor(0, 64),
        })
        assert router.route(TaskDescription(), CPN, GPN) == "flux"
        assert router.route(TaskDescription(mode="function"),
                            CPN, GPN) == "dragon"

    def test_offloads_when_preferred_wait_is_long(self):
        # flux: 1000 tasks backlog at 10/s -> 100 s wait;
        # srun: empty at 50/s -> 0 s wait.
        router = DynamicRouter({
            "flux": _measured(1000, rate=10),
            "srun": _measured(0, rate=50),
        })
        assert router.route(TaskDescription(), CPN, GPN) == "srun"

    def test_does_not_spill_to_slower_backend(self):
        # flux drains its 100-task backlog in 1 s; srun's empty queue
        # is "free" but srun history shows 0.5 tasks/s — spilling one
        # wave there would take minutes.  Expected-wait keeps flux.
        router = DynamicRouter({
            "flux": _measured(100, rate=100),
            "srun": _measured(0, rate=0.5),
        })
        assert router.route(TaskDescription(), CPN, GPN) == "flux"

    def test_hysteresis_keeps_preferred_on_small_difference(self):
        router = DynamicRouter({
            "flux": _measured(50, rate=100),   # 0.5 s wait
            "srun": _measured(0, rate=100),    # 0 s wait
        })
        assert router.route(TaskDescription(), CPN, GPN) == "flux"

    def test_no_blind_spill_without_history(self):
        # A backend with no measured rate only receives probe traffic:
        # the bulk stays on the preferred backend even when backlogged.
        router = DynamicRouter({
            "flux": _FakeExecutor(640, 64),
            "srun": _FakeExecutor(0, 64),
        })
        decisions = [router.route(TaskDescription(), CPN, GPN)
                     for _ in range(100)]
        probes = decisions.count("srun")
        assert decisions.count("flux") == 100 - probes
        # Exactly the probe cadence: one in probe_interval.
        assert probes == 100 // DynamicRouter.probe_interval

    def test_explicit_hint_bypasses_load(self):
        router = DynamicRouter({
            "flux": _measured(10_000, rate=1, cores=8),
            "dragon": _FakeExecutor(0, 64),
        })
        td = TaskDescription(backend="flux")
        assert router.route(td, CPN, GPN) == "flux"

    def test_unroutable_still_raises(self):
        router = DynamicRouter({"srun": _FakeExecutor(0, 8)})
        with pytest.raises(SchedulingError):
            router.route(TaskDescription(mode="function"), CPN, GPN)


class TestDynamicRoutingIntegration:
    def test_executables_spill_to_srun_under_flux_backlog(self):
        session = Session(cluster=generic(8, 8, 2), seed=33)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=8, routing="dynamic",
            partitions=(PartitionSpec("flux", nodes=4),
                        PartitionSpec("srun", nodes=4))))
        tmgr.add_pilot(pilot)
        # Far more work than the flux partition can absorb quickly:
        # dynamic routing spreads executables over both backends.
        tasks = tmgr.submit_tasks([TaskDescription(duration=30.0)
                                   for _ in range(400)])
        session.run(tmgr.wait_tasks())
        backends = {t.backend for t in tasks}
        assert backends == {"flux", "srun"}
        assert all(t.succeeded for t in tasks)

    def test_static_routing_keeps_everything_on_flux(self):
        session = Session(cluster=generic(8, 8, 2), seed=33)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=8, routing="static",
            partitions=(PartitionSpec("flux", nodes=4),
                        PartitionSpec("srun", nodes=4))))
        tmgr.add_pilot(pilot)
        tasks = tmgr.submit_tasks([TaskDescription(duration=30.0)
                                   for _ in range(400)])
        session.run(tmgr.wait_tasks())
        assert {t.backend for t in tasks} == {"flux"}

    def test_invalid_routing_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            PilotDescription(nodes=2, routing="roulette")
