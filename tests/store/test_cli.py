"""The ``store`` subcommand and ``run --cache`` CLI surface."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import StoreError
from repro.experiments.__main__ import main
from repro.store.cli import parse_filters


class TestParseFilters:
    def test_equality(self):
        assert parse_filters(["launcher=flux"]) == {"launcher": "flux"}

    def test_comparison_operators(self):
        assert parse_filters(["n_nodes>=64"]) == {"n_nodes__ge": 64}
        assert parse_filters(["n_nodes<=4"]) == {"n_nodes__le": 4}
        assert parse_filters(["seed!=0"]) == {"seed__ne": 0}
        assert parse_filters(["makespan<9.5"]) == {"makespan__lt": 9.5}
        assert parse_filters(["n_tasks>10"]) == {"n_tasks__gt": 10}

    def test_value_coercion(self):
        where = parse_filters(["a=1", "b=1.5", "c=true", "d=text"])
        assert where == {"a": 1, "b": 1.5, "c": True, "d": "text"}

    def test_bad_token_raises(self):
        with pytest.raises(StoreError, match="bad filter"):
            parse_filters(["launcher"])


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    """A store populated through the real CLI (two runs, one cached)."""
    root = tmp_path_factory.mktemp("clistore")
    store = str(root / "store")
    args = ["run", "srun", "--nodes", "1", "--waves", "1",
            "--cache", store]
    assert main(args) == 0
    assert main(args) == 0  # second invocation hits
    assert main(["run", "srun", "--nodes", "2", "--waves", "1",
                 "--cache", store]) == 0
    return store


class TestRunCache:
    def test_miss_then_hit_lines(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = ["run", "srun", "--nodes", "1", "--waves", "1",
                "--cache", store]
        assert main(args) == 0
        assert "cache: miss" in capsys.readouterr().err
        assert main(args) == 0
        assert "cache: hit" in capsys.readouterr().err

    def test_sweep_summary_line(self, store_dir, capsys):
        assert main(["run", "srun", "--nodes", "1", "--waves", "1",
                     "--reps", "2", "--cache", store_dir]) == 0
        err = capsys.readouterr().err
        assert "cache: 1 hit(s), 1 simulated" in err

    def test_ensemble_summary_line(self, store_dir, capsys):
        assert main(["run", "srun", "--nodes", "1", "--waves", "1",
                     "--ensemble", "--seeds", "0,1",
                     "--cache", store_dir]) == 0
        err = capsys.readouterr().err
        assert "cache:" in err and "hit(s)" in err


class TestStoreCommand:
    def test_ls(self, store_dir, capsys):
        assert main(["store", "ls", store_dir]) == 0
        out = capsys.readouterr().out
        assert "digest" in out
        assert "run(s) in" in out

    def test_ls_json(self, store_dir, capsys):
        assert main(["store", "ls", store_dir, "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) >= 2
        assert all("digest" in row for row in rows)

    def test_get_by_prefix(self, store_dir, capsys):
        main(["store", "ls", store_dir, "--json"])
        digest = json.loads(capsys.readouterr().out)[0]["digest"]
        assert main(["store", "get", store_dir, digest[:12],
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["digest"] == digest
        assert doc["result"]["n_tasks"] > 0

    def test_get_unknown(self, store_dir, capsys):
        assert main(["store", "get", store_dir, "ffff"]) == 1
        assert "no store entry" in capsys.readouterr().err

    def test_get_export(self, store_dir, tmp_path, capsys):
        main(["store", "ls", store_dir, "--json"])
        digest = json.loads(capsys.readouterr().out)[0]["digest"]
        out = tmp_path / "export"
        assert main(["store", "get", store_dir, digest,
                     "--out", str(out)]) == 0
        assert (out / "profile.jsonl").exists()
        assert (out / "result.json").exists()

    def test_query_filters(self, store_dir, capsys):
        assert main(["store", "query", store_dir, "n_nodes>=2",
                     "--json"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert all(doc["config"]["n_nodes"] >= 2 for doc in docs)
        assert docs

    def test_query_near(self, store_dir, capsys):
        main(["store", "ls", store_dir, "--json"])
        digest = json.loads(capsys.readouterr().out)[0]["digest"]
        assert main(["store", "query", store_dir, "--near", digest,
                     "-k", "1", "--json"]) == 0
        pairs = json.loads(capsys.readouterr().out)
        assert len(pairs) == 1
        assert "distance" in pairs[0]

    def test_query_compare(self, store_dir, capsys):
        main(["store", "ls", store_dir, "--json"])
        digests = [r["digest"]
                   for r in json.loads(capsys.readouterr().out)][:2]
        assert main(["store", "query", store_dir,
                     "--compare", *digests]) == 0
        out = capsys.readouterr().out
        assert "throughput_avg" in out and "makespan" in out

    def test_verify_ok_and_corrupt(self, store_dir, capsys):
        assert main(["store", "verify", store_dir]) == 0
        assert "ok" in capsys.readouterr().out
        from repro.store import RunStore

        store = RunStore(store_dir)
        digest = store.entries()[0]["digest"]
        blob = store._object_dir(digest) / "profile.jsonl"
        original = blob.read_bytes()
        try:
            blob.write_bytes(b"garbage")
            assert main(["store", "verify", store_dir]) == 1
            assert "sha256 mismatch" in capsys.readouterr().err
        finally:
            blob.write_bytes(original)

    def test_gc(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        for seed in ("0", "1", "2"):
            assert main(["run", "srun", "--nodes", "1", "--waves", "1",
                         "--seeds", seed, "--ensemble",
                         "--cache", store]) == 0
        capsys.readouterr()
        assert main(["store", "gc", store, "--max-entries", "1"]) == 0
        out = capsys.readouterr().out
        assert "2 entry(ies) evicted, 1 kept" in out
