"""Memoized simulation: hits are sound, misses populate, sweeps
cache at per-seed granularity."""

from __future__ import annotations

import pytest

import repro.store.keys as keys_mod
from repro.ensemble import run_ensemble
from repro.experiments.configs import config_by_id
from repro.experiments.harness import run_experiment, run_repetitions
from repro.store import RunStore
from repro.store.store import export_profile_bytes


def quick_cfg(**overrides):
    return config_by_id("srun", n_nodes=1, waves=1, **overrides)


class TestRunExperiment:
    def test_cold_then_warm(self, tmp_path):
        cfg = quick_cfg()
        cold = run_experiment(cfg, cache=tmp_path / "store")
        assert cold.provenance == "fresh"
        assert cold.cache == {"digest": cold.cache["digest"],
                              "hit": False, "stored": True}
        warm = run_experiment(cfg, cache=tmp_path / "store")
        assert warm.provenance == "cached"
        assert warm.cache["hit"] is True
        assert warm.cache["digest"] == cold.cache["digest"]

    def test_hit_metrics_equal_fresh(self, tmp_path):
        cfg = quick_cfg()
        cold = run_experiment(cfg, cache=tmp_path / "store")
        warm = run_experiment(cfg, cache=tmp_path / "store")
        assert warm.throughput.avg == cold.throughput.avg
        assert warm.throughput.peak == cold.throughput.peak
        assert warm.utilization_cores == cold.utilization_cores
        assert warm.makespan == cold.makespan
        assert warm.n_tasks == cold.n_tasks
        assert warm.n_done == cold.n_done
        assert warm.startup_overheads == cold.startup_overheads

    def test_cached_profile_byte_identical_to_fresh(self, tmp_path):
        cfg = quick_cfg()
        baseline = run_experiment(cfg, keep_session=True)
        fresh_bytes = export_profile_bytes(baseline.session.profiler)
        baseline.session.close()

        cold = run_experiment(cfg, cache=tmp_path / "store")
        store = RunStore(tmp_path / "store")
        cached = store.fetch(cold.cache["digest"])
        assert cached.profile_bytes() == fresh_bytes

    def test_cache_off_is_default_and_inert(self, tmp_path):
        result = run_experiment(quick_cfg())
        assert result.provenance == "fresh"
        assert result.cache is None

    def test_keep_session_bypasses_read_still_populates(self, tmp_path):
        cfg = quick_cfg()
        run_experiment(cfg, cache=tmp_path / "store")
        live = run_experiment(cfg, keep_session=True,
                              cache=tmp_path / "store")
        assert live.provenance == "fresh"       # simulated, not served
        assert live.session is not None
        assert live.cache["hit"] is False
        assert live.cache["stored"] is False    # entry already there
        live.session.close()

    def test_code_fingerprint_change_forces_miss(self, tmp_path,
                                                 monkeypatch):
        cfg = quick_cfg()
        cold = run_experiment(cfg, cache=tmp_path / "store")
        monkeypatch.setattr(keys_mod, "code_fingerprint",
                            lambda *a, **k: "f" * 64)
        rerun = run_experiment(cfg, cache=tmp_path / "store")
        assert rerun.provenance == "fresh"
        assert rerun.cache["digest"] != cold.cache["digest"]

    def test_different_seed_misses(self, tmp_path):
        run_experiment(quick_cfg(), cache=tmp_path / "store")
        other = run_experiment(quick_cfg(seed=7), cache=tmp_path / "store")
        assert other.provenance == "fresh"

    def test_wall_seconds_reflects_lookup_not_stored_run(self, tmp_path):
        cfg = quick_cfg()
        cold = run_experiment(cfg, cache=tmp_path / "store")
        warm = run_experiment(cfg, cache=tmp_path / "store")
        assert warm.wall_seconds < cold.wall_seconds


class TestSweeps:
    def test_repetitions_per_seed_granularity(self, tmp_path):
        cfg = quick_cfg()
        store = tmp_path / "store"
        # pre-store 2 of the 4 seeds
        run_experiment(cfg.with_seed(cfg.seed + 1), cache=store)
        run_experiment(cfg.with_seed(cfg.seed + 3), cache=store)
        agg = run_repetitions(cfg, n_reps=4, cache=store)
        assert agg.provenance == {"cached": 2, "fresh": 2}
        again = run_repetitions(cfg, n_reps=4, cache=store)
        assert again.provenance == {"cached": 4}
        assert again.throughput_avg == agg.throughput_avg
        assert again.makespan_avg == agg.makespan_avg

    def test_parallel_repetitions_share_store(self, tmp_path):
        cfg = quick_cfg()
        store = tmp_path / "store"
        agg = run_repetitions(cfg, n_reps=4, parallel=2, cache=store)
        assert agg.provenance == {"fresh": 4}
        warm = run_repetitions(cfg, n_reps=4, parallel=2, cache=store)
        assert warm.provenance == {"cached": 4}
        assert warm.throughput_avg == agg.throughput_avg

    def test_serial_and_parallel_agree_through_cache(self, tmp_path):
        cfg = quick_cfg()
        serial = run_repetitions(cfg, n_reps=3)
        cached = run_repetitions(cfg, n_reps=3,
                                 cache=tmp_path / "store")
        warm = run_repetitions(cfg, n_reps=3, cache=tmp_path / "store")
        for agg in (cached, warm):
            assert agg.throughput_avg == serial.throughput_avg
            assert agg.throughput_max == serial.throughput_max
            assert agg.makespan_avg == serial.makespan_avg

    def test_telemetry_counts_cached_members(self, tmp_path):
        cfg = quick_cfg()
        store = tmp_path / "store"
        run_repetitions(cfg, n_reps=3, cache=store)
        records = []
        run_repetitions(cfg, n_reps=3, cache=store,
                        progress=records.append)
        assert records
        last = records[-1]
        assert last["members_done"] == 3
        assert last["members_cached"] == 3
        assert last["members_resumed"] == 0


class TestEnsemble:
    def test_vectorized_engine_uses_store(self, tmp_path):
        cfg = quick_cfg()
        store = tmp_path / "store"
        first = run_ensemble(cfg, seeds=[0, 1, 2, 3], cache=store)
        assert first.engine == "vectorized"
        assert first.provenance == {"fresh": 4}
        second = run_ensemble(cfg, seeds=[0, 1, 2, 3, 4], cache=store)
        assert second.provenance == {"cached": 4, "fresh": 1}
        for a, b in zip(first.results, second.results):
            assert a.throughput.avg == b.throughput.avg
            assert a.makespan == b.makespan

    def test_replay_engine_uses_store(self, tmp_path):
        # flux_n with real partitions stays on the replay engine
        # (flux_1/dragon vectorize nowadays).
        cfg = config_by_id("flux_n", n_nodes=2, n_partitions=2, waves=1)
        store = tmp_path / "store"
        first = run_ensemble(cfg, seeds=[0, 1], cache=store)
        assert first.engine == "replay"
        second = run_ensemble(cfg, seeds=[0, 1, 2], cache=store)
        assert second.provenance == {"cached": 2, "fresh": 1}

    def test_cached_profile_dir_exports_byte_identical(self, tmp_path):
        cfg = quick_cfg()
        store = tmp_path / "store"
        plain = run_ensemble(cfg, seeds=[5, 6],
                             profile_dir=str(tmp_path / "plain"))
        run_ensemble(cfg, seeds=[5, 6], cache=store)
        served = run_ensemble(cfg, seeds=[5, 6], cache=store,
                              profile_dir=str(tmp_path / "served"))
        assert served.provenance == {"cached": 2}
        for member, original in zip(served.members, plain.members):
            with open(member.profile_path, "rb") as got, \
                    open(original.profile_path, "rb") as want:
                assert got.read() == want.read()

    def test_keep_profiles_bypasses_read(self, tmp_path):
        cfg = quick_cfg()
        store = tmp_path / "store"
        run_ensemble(cfg, seeds=[0, 1], cache=store)
        live = run_ensemble(cfg, seeds=[0, 1], cache=store,
                            keep_profiles=True)
        assert live.provenance == {"fresh": 2}
        assert all(m.profiler is not None for m in live.members)

    def test_parallel_ensemble_workers_share_store(self, tmp_path):
        cfg = quick_cfg()
        store = tmp_path / "store"
        run_ensemble(cfg, seeds=[0, 1, 2], cache=store)
        mixed = run_ensemble(cfg, seeds=[0, 1, 2, 3], cache=store,
                             parallel=2)
        assert mixed.provenance == {"cached": 3, "fresh": 1}

    def test_aggregate_matches_uncached(self, tmp_path):
        cfg = quick_cfg()
        plain = run_ensemble(cfg, seeds=[0, 1, 2]).aggregate()
        run_ensemble(cfg, seeds=[0, 1, 2], cache=tmp_path / "store")
        warm = run_ensemble(cfg, seeds=[0, 1, 2],
                            cache=tmp_path / "store").aggregate()
        assert warm.throughput_avg == plain.throughput_avg
        assert warm.utilization_avg == plain.utilization_avg
        assert warm.makespan_avg == plain.makespan_avg


class TestManifest:
    def test_manifest_records_provenance_only_with_cache(self, tmp_path):
        from repro.observability.manifest import build_manifest

        cfg = quick_cfg()
        plain = run_experiment(cfg)
        doc = build_manifest(config=cfg, result=plain)
        assert "provenance" not in doc["result"]
        assert "cache" not in doc["result"]

        cached = run_experiment(cfg, cache=tmp_path / "store")
        doc = build_manifest(config=cfg, result=cached)
        assert doc["result"]["provenance"] == "fresh"
        assert doc["result"]["cache"]["hit"] is False

    def test_bundle_run_populates_store(self, tmp_path):
        cfg = quick_cfg()
        result = run_experiment(cfg, bundle=str(tmp_path / "bundle"),
                                cache=tmp_path / "store")
        assert result.provenance == "fresh"  # bundles need a session
        store = RunStore(tmp_path / "store")
        assert store.fetch(result.cache["digest"]) is not None
