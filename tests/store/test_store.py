"""RunStore mechanics: atomicity, integrity, races, eviction."""

from __future__ import annotations

import hashlib
import json

import pytest

import repro.store.store as store_mod
from repro.exceptions import StoreError
from repro.experiments.configs import config_by_id
from repro.experiments.harness import run_experiment
from repro.store import RunStore
from repro.store.store import export_profile_bytes, result_to_doc


@pytest.fixture(scope="module")
def donor():
    """One real finished run whose artifacts seed every store test."""
    cfg = config_by_id("srun", n_nodes=1, waves=1)
    result = run_experiment(cfg, keep_session=True)
    profile = export_profile_bytes(result.session.profiler)
    result.session.close()
    result.session = None
    result.tasks = []
    return cfg, result, profile


def populate(store: RunStore, donor, seeds=(0,)):
    """Store the donor run under one digest per requested seed."""
    cfg, result, profile = donor
    digests = []
    for seed in seeds:
        digest = store.digest_for(cfg.with_seed(seed))
        assert store.put(digest, cfg.with_seed(seed), result,
                         profile_bytes=profile)
        digests.append(digest)
    return digests


class TestRoundtrip:
    def test_put_fetch_roundtrip(self, tmp_path, donor):
        cfg, result, profile = donor
        store = RunStore(tmp_path / "store")
        (digest,) = populate(store, donor)
        cached = store.fetch(digest)
        assert cached is not None
        assert cached.profile_bytes() == profile
        rebuilt = cached.to_result(cfg)
        assert rebuilt.provenance == "cached"
        assert rebuilt.cache == {"hit": True, "digest": digest}
        assert rebuilt.throughput.avg == result.throughput.avg
        assert rebuilt.makespan == result.makespan
        assert rebuilt.n_tasks == result.n_tasks

    def test_result_doc_roundtrips_faults_and_shards(self, donor):
        _, result, _ = donor
        doc = result_to_doc(result)
        assert "faults" in doc and "shard_peak_rss_mb" in doc
        # json round-trip, as the store actually does it
        doc = json.loads(json.dumps(doc, sort_keys=True))
        from repro.store.store import result_from_doc

        rebuilt = result_from_doc(donor[0], doc)
        assert rebuilt.throughput.peak == result.throughput.peak

    def test_miss_is_counted(self, tmp_path, donor):
        store = RunStore(tmp_path / "store")
        assert store.fetch("0" * 64) is None
        assert store.stats.misses == 1

    def test_reopen_existing_store(self, tmp_path, donor):
        root = tmp_path / "store"
        (digest,) = populate(RunStore(root), donor)
        assert RunStore(root).fetch(digest) is not None

    def test_foreign_directory_rejected(self, tmp_path):
        (tmp_path / "store.json").write_text('{"format": "other"}')
        with pytest.raises(StoreError):
            RunStore(tmp_path)

    def test_scheme_mismatch_rejected(self, tmp_path):
        (tmp_path / "store.json").write_text(json.dumps({
            "format": store_mod.STORE_FORMAT, "version": 1,
            "key_scheme": -1}))
        with pytest.raises(StoreError):
            RunStore(tmp_path)

    def test_resolve(self, tmp_path):
        assert RunStore.resolve(None) is None
        store = RunStore(tmp_path / "store")
        assert RunStore.resolve(store) is store
        assert RunStore.resolve(str(tmp_path / "store")).root == store.root


class TestIntegrity:
    def test_corrupt_result_quarantined(self, tmp_path, donor):
        store = RunStore(tmp_path / "store")
        (digest,) = populate(store, donor)
        path = store._object_dir(digest) / "result.json"
        path.write_bytes(path.read_bytes().replace(b":", b": ", 1))
        assert store.fetch(digest) is None
        assert store.stats.integrity_failures == 1
        # quarantined: the entry is gone, not served half-broken
        assert not store._object_dir(digest).exists()

    def test_corrupt_profile_detected_on_read(self, tmp_path, donor):
        store = RunStore(tmp_path / "store")
        (digest,) = populate(store, donor)
        blob = store._object_dir(digest) / "profile.jsonl"
        blob.write_bytes(blob.read_bytes()[:-1] + b"X")
        cached = store.fetch(digest)
        assert cached is not None  # result doc itself is intact
        with pytest.raises(StoreError, match="corrupt"):
            cached.profile_bytes()

    def test_unreadable_entry_quarantined(self, tmp_path, donor):
        store = RunStore(tmp_path / "store")
        (digest,) = populate(store, donor)
        (store._object_dir(digest) / "entry.json").write_text("{torn")
        assert store.fetch(digest) is None
        assert store.stats.integrity_failures == 1

    def test_verify_clean_and_dirty(self, tmp_path, donor):
        store = RunStore(tmp_path / "store")
        d1, d2 = populate(store, donor, seeds=(0, 1))
        assert store.verify() == []
        blob = store._object_dir(d1) / "profile.jsonl"
        blob.write_bytes(b"garbage")
        (store._object_dir(d2) / "result.json").unlink()
        problems = store.verify()
        assert len(problems) == 2
        assert any("sha256 mismatch" in p for p in problems)
        assert any("missing artifact" in p for p in problems)
        # verify is read-only: nothing was quarantined
        assert store._object_dir(d1).exists()


class TestConcurrency:
    def test_writer_race_one_winner(self, tmp_path, donor, monkeypatch):
        """A concurrent writer publishing mid-stage loses cleanly."""
        cfg, result, profile = donor
        store = RunStore(tmp_path / "store")
        rival = RunStore(tmp_path / "store")
        digest = store.digest_for(cfg)

        def publish_rival_first(profiler):
            # Fires after put()'s early existence check, before its
            # rename — exactly the window a real race would hit.
            assert rival.put(digest, cfg, result, profile_bytes=profile)
            return profile

        monkeypatch.setattr(store_mod, "export_profile_bytes",
                            publish_rival_first)
        won = store.put(digest, cfg, result, profiler=object())
        assert won is False
        assert store.stats.lost_races == 1
        # the loser's staging copy is cleaned up; the entry survives
        assert list((store.root / "tmp").iterdir()) == []
        cached = store.fetch(digest)
        assert cached is not None
        assert cached.profile_bytes() == profile

    def test_duplicate_put_is_noop(self, tmp_path, donor):
        cfg, result, profile = donor
        store = RunStore(tmp_path / "store")
        digest = store.digest_for(cfg)
        assert store.put(digest, cfg, result, profile_bytes=profile)
        assert not store.put(digest, cfg, result, profile_bytes=profile)
        assert store.stats.stored == 1

    def test_parallel_threads_race_to_one_winner(self, tmp_path, donor):
        import threading

        cfg, result, profile = donor
        digest = RunStore(tmp_path / "store").digest_for(cfg)
        outcomes = []

        def write():
            s = RunStore(tmp_path / "store")
            outcomes.append(s.put(digest, cfg, result,
                                  profile_bytes=profile))

        threads = [threading.Thread(target=write) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes.count(True) == 1
        store = RunStore(tmp_path / "store")
        assert store.verify() == []
        assert store.fetch(digest).profile_bytes() == profile


class TestEviction:
    def test_lru_eviction_order(self, tmp_path, donor):
        store = RunStore(tmp_path / "store")
        d1, d2, d3 = populate(store, donor, seeds=(0, 1, 2))
        store.fetch(d1)  # bump d1: d2 is now the LRU entry
        evicted = store.gc(max_entries=2)
        assert evicted == [d2]
        assert store.fetch(d1) is not None
        assert store.fetch(d3) is not None

    def test_max_bytes_cap_on_write(self, tmp_path, donor):
        cfg, result, profile = donor
        store = RunStore(tmp_path / "store", max_bytes=len(profile) * 2)
        d1, d2, d3 = populate(store, donor, seeds=(0, 1, 2))
        kept = {row["digest"] for row in store.entries()}
        assert d3 in kept          # the newest write is protected
        assert len(kept) < 3
        assert store.stats.evicted >= 1

    def test_eviction_never_tears_a_mid_read(self, tmp_path, donor):
        """POSIX rename-to-trash: an open handle keeps its bytes."""
        cfg, result, profile = donor
        store = RunStore(tmp_path / "store")
        (digest,) = populate(store, donor)
        blob = store._object_dir(digest) / "profile.jsonl"
        with blob.open("rb") as fh:
            first = fh.read(1024)  # reader is mid-flight
            assert store.gc(max_entries=0) == [digest]
            assert not store._object_dir(digest).exists()
            data = first + fh.read()
        assert hashlib.sha256(data).hexdigest() \
            == hashlib.sha256(profile).hexdigest()

    def test_store_too_small_for_one_entry_keeps_newest(self, tmp_path,
                                                        donor):
        store = RunStore(tmp_path / "store", max_bytes=1)
        (digest,) = populate(store, donor)
        assert store.fetch(digest) is not None


class TestIndex:
    def test_entries_summary(self, tmp_path, donor):
        store = RunStore(tmp_path / "store")
        populate(store, donor, seeds=(0, 1))
        rows = store.entries()
        assert len(rows) == 2
        assert {row["seed"] for row in rows} == {0, 1}
        assert all(row["bytes"] > 0 for row in rows)

    def test_index_rebuilt_when_deleted(self, tmp_path, donor):
        store = RunStore(tmp_path / "store")
        (digest,) = populate(store, donor)
        (store.root / "index.json").unlink()
        assert [row["digest"] for row in store.entries()] == [digest]

    def test_index_rebuilt_when_torn(self, tmp_path, donor):
        store = RunStore(tmp_path / "store")
        (digest,) = populate(store, donor)
        (store.root / "index.json").write_text("{half a doc")
        assert [row["digest"] for row in store.entries()] == [digest]

    def test_get_by_prefix(self, tmp_path, donor):
        store = RunStore(tmp_path / "store")
        (digest,) = populate(store, donor)
        assert store.get(digest[:10]).digest == digest
        assert store.get("ffff") is None

    def test_ambiguous_prefix_raises(self, tmp_path, donor):
        store = RunStore(tmp_path / "store")
        populate(store, donor, seeds=(0, 1))
        with pytest.raises(StoreError, match="ambiguous"):
            store.get("")

    def test_export(self, tmp_path, donor):
        cfg, result, profile = donor
        store = RunStore(tmp_path / "store")
        (digest,) = populate(store, donor)
        written = store.export(digest, tmp_path / "out")
        assert written["profile.jsonl"].read_bytes() == profile
        doc = json.loads(written["result.json"].read_text())
        assert doc["n_tasks"] == result.n_tasks
