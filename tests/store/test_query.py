"""Query API: filters, metric vectors, neighbours, comparison."""

from __future__ import annotations

import pytest

from repro.exceptions import StoreError
from repro.experiments.configs import config_by_id
from repro.experiments.harness import run_experiment
from repro.store import RunStore
from repro.store.query import (
    METRIC_FIELDS,
    compare,
    metric_vector,
    nearest,
    query,
)


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    """A store holding a small mixed population of real runs."""
    root = tmp_path_factory.mktemp("qstore") / "store"
    for cfg in (config_by_id("srun", n_nodes=1, waves=1),
                config_by_id("srun", n_nodes=1, waves=1, seed=1),
                config_by_id("srun", n_nodes=2, waves=1),
                config_by_id("flux_1", n_nodes=1, waves=1)):
        run_experiment(cfg, cache=root)
    return RunStore(root)


class TestQuery:
    def test_equality_filter(self, store):
        docs = query(store, where={"launcher": "flux"})
        assert len(docs) == 1
        assert docs[0]["config"]["launcher"] == "flux"

    def test_comparison_operator_suffix(self, store):
        docs = query(store, where={"n_nodes__ge": 2})
        assert len(docs) == 1
        assert docs[0]["config"]["n_nodes"] == 2

    def test_entry_and_result_fields_resolve(self, store):
        assert len(query(store, where={"seed": 1})) == 1
        docs = query(store, where={"n_tasks__gt": 0})
        assert len(docs) == 4

    def test_callable_predicate(self, store):
        docs = query(store, where={"seed": lambda s: s in (0,)})
        assert len(docs) == 3

    def test_limit_and_order(self, store):
        docs = query(store, limit=2)
        assert len(docs) == 2
        created = [d["created"] for d in query(store)]
        assert created == sorted(created, reverse=True)

    def test_unknown_operator_raises(self, store):
        with pytest.raises(StoreError, match="unknown query operator"):
            query(store, where={"n_nodes__approx": 1})

    def test_unmatchable_field_returns_nothing(self, store):
        assert query(store, where={"no_such_field": 1}) == []


class TestMetricSpace:
    def test_metric_vector_shape(self, store):
        doc = query(store)[0]
        vec = metric_vector(doc)
        assert len(vec) == len(METRIC_FIELDS)
        assert all(isinstance(v, float) for v in vec)
        assert vec[METRIC_FIELDS.index("n_tasks")] > 0

    def test_nearest_excludes_self_and_ranks(self, store):
        target = query(store, where={"launcher": "srun",
                                     "n_nodes": 1, "seed": 0})[0]
        pairs = nearest(store, target["digest"], k=3)
        assert len(pairs) == 3
        assert all(doc["digest"] != target["digest"] for doc, _ in pairs)
        distances = [dist for _, dist in pairs]
        assert distances == sorted(distances)
        # the same config at another seed is nearer than another scale
        nearest_doc = pairs[0][0]
        assert nearest_doc["config"]["n_nodes"] == 1

    def test_nearest_with_filter(self, store):
        target = query(store, where={"launcher": "flux"})[0]
        pairs = nearest(store, target["digest"], k=5,
                        where={"launcher": "srun"})
        assert 0 < len(pairs) <= 3
        assert all(doc["config"]["launcher"] == "srun"
                   for doc, _ in pairs)

    def test_nearest_unknown_digest(self, store):
        with pytest.raises(StoreError, match="no store entry"):
            nearest(store, "0" * 64)

    def test_compare_rows(self, store):
        docs = query(store, where={"launcher": "srun", "n_nodes": 1})
        digests = [d["digest"] for d in docs[:2]]
        rows = compare(store, digests)
        assert [r["metric"] for r in rows] == list(METRIC_FIELDS)
        for row in rows:
            assert len(row["values"]) == 2
            assert row["delta"][0] == 0.0

    def test_compare_needs_two(self, store):
        with pytest.raises(StoreError, match="at least two"):
            compare(store, [query(store)[0]["digest"]])
