"""Canonical run identity: normalization, exclusions, fingerprints."""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

from repro.experiments.configs import config_by_id
from repro.experiments.harness import build_workload
from repro.store.keys import (
    CACHE_KEY_EXCLUDED,
    cache_key,
    code_fingerprint,
    normalize_config,
    run_digest,
    workload_digest,
)


def cfg(**overrides):
    return config_by_id("srun", n_nodes=1, waves=1, **overrides)


class TestNormalization:
    def test_excluded_fields_absent(self):
        doc = normalize_config(cfg())
        for name in CACHE_KEY_EXCLUDED:
            assert name not in doc

    def test_behavior_fields_present(self):
        doc = normalize_config(cfg())
        for name in ("launcher", "workload", "n_nodes", "n_partitions",
                     "duration", "waves"):
            assert name in doc

    def test_json_serializable_with_defaults_filled(self):
        import json

        doc = normalize_config(cfg())
        json.dumps(doc, sort_keys=True, default=repr)  # must not raise


class TestCacheKey:
    def test_stable_across_calls(self):
        assert cache_key(cfg()) == cache_key(cfg())

    def test_seed_excluded(self):
        assert cache_key(cfg(seed=0)) == cache_key(cfg(seed=999))

    def test_labels_excluded(self):
        base = cfg()
        relabeled = replace(base, exp_id="renamed",
                            tags={"campaign": "x"})
        assert cache_key(base) == cache_key(relabeled)

    def test_trace_neutral_switches_excluded(self):
        # bulk/lean are pinned trace-neutral by the determinism
        # suites; the cache key must not distinguish them.
        base = cfg()
        assert cache_key(base) == cache_key(replace(base, bulk=True))
        assert cache_key(base) == cache_key(replace(base, lean=True))

    def test_behavior_fields_included(self):
        base = cfg()
        assert cache_key(base) != cache_key(replace(base, waves=2))
        assert cache_key(base) != cache_key(replace(base, n_nodes=2))
        assert cache_key(base) != cache_key(replace(base, duration=5.0))

    def test_config_method_delegates(self):
        c = cfg()
        assert c.cache_key() == cache_key(c)


class TestRunDigest:
    def test_per_seed_granularity(self):
        c = cfg()
        d0 = run_digest(c, seed=0)
        d1 = run_digest(c, seed=1)
        assert d0 != d1
        # and seed defaults to cfg.seed
        assert run_digest(c) == run_digest(c, seed=c.seed)

    def test_seed_equivalent_configs_share_digest(self):
        # with_seed(s) on the base config and an explicit seed= on the
        # digest are the same run — the sweep fast path relies on it.
        c = cfg()
        assert run_digest(c, seed=7) == run_digest(c.with_seed(7))

    def test_derived_workload_matches_none(self):
        c = cfg()
        descriptions = build_workload(c)
        assert run_digest(c, descriptions=descriptions, derived=True) \
            == run_digest(c, descriptions=None)

    def test_custom_workload_changes_digest(self):
        c = cfg()
        descriptions = build_workload(c)
        assert run_digest(c, descriptions=descriptions, derived=False) \
            != run_digest(c)

    def test_workload_digest_is_content_addressed(self):
        c = cfg()
        a = build_workload(c)
        b = build_workload(c)
        assert workload_digest(a) == workload_digest(b)
        assert workload_digest(a[:-1]) != workload_digest(a)

    def test_fingerprint_component(self):
        c = cfg()
        assert run_digest(c, fingerprint="a" * 64) \
            != run_digest(c, fingerprint="b" * 64)


class TestCodeFingerprint:
    def test_memoized_and_stable(self):
        assert code_fingerprint() == code_fingerprint()

    def test_source_change_invalidates(self, tmp_path: Path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        before = code_fingerprint(pkg, refresh=True)
        (pkg / "a.py").write_text("x = 2\n")
        assert code_fingerprint(pkg, refresh=True) != before

    def test_new_file_invalidates(self, tmp_path: Path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        before = code_fingerprint(pkg, refresh=True)
        (pkg / "b.py").write_text("y = 1\n")
        assert code_fingerprint(pkg, refresh=True) != before

    def test_non_python_files_ignored(self, tmp_path: Path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        before = code_fingerprint(pkg, refresh=True)
        (pkg / "notes.md").write_text("irrelevant\n")
        assert code_fingerprint(pkg, refresh=True) == before
