"""Shard-worker supervision: watchdog, respawn, deterministic replay.

The host-fault side of the tentpole.  Pinned here:

* a shard worker SIGKILLed mid-run is respawned and replayed from the
  journal, and the recovered run's profile is **byte-identical** to
  the uninterrupted same-seed run;
* a SIGSTOPped (hung) worker trips the heartbeat watchdog and is
  recovered the same way;
* without supervision a lost worker raises
  :class:`~repro.exceptions.HostFailureError` (crash *detection* is
  always on — the run fails fast instead of hanging forever);
* the respawn budget bounds recovery; modeled simulation errors are
  never retried;
* ``ProcessHost.close`` and the atexit reaper leave no orphans.
"""

import hashlib
import io
import os
import signal
import time

import pytest

from repro.exceptions import HostFailureError
from repro.experiments.configs import ExperimentConfig
from repro.experiments.harness import run_experiment
from repro.platform.latency import FRONTIER_LATENCIES
from repro.resilience import ResilienceSpec
from repro.resilience.supervisor import SupervisorPolicy
from repro.shard.coordinator import _LIVE_WORKERS, ProcessHost
from repro.shard.protocol import InstanceSpec, ShardConfig

FLUX = dict(exp_id="sup", launcher="flux", workload="null",
            n_nodes=16, n_partitions=4, duration=0.0, waves=1, seed=11,
            shards=2)


def _digest(result) -> str:
    from repro.analytics.export import write_event_lines

    buf = io.StringIO()
    write_event_lines(buf, result.session.profiler._events)
    return hashlib.sha256(buf.getvalue().encode()).hexdigest()


def _run(cfg, **kw):
    result = run_experiment(cfg, keep_session=True, **kw)
    digest = _digest(result)
    result.session.close()
    return digest, result


def _host(policy, incidents=None, heartbeat=0.1):
    config = ShardConfig(
        shard_index=0, seed=7, start_time=0.0,
        latencies=FRONTIER_LATENCIES, cluster_name="frontier",
        cores_per_node=8, gpus_per_node=0, mem_gb_per_node=64.0,
        instances=(InstanceSpec(0, "agent.0.flux.000", (0, 1), "fcfs"),),
        lean=False, trace=True, observe=False, faults=None,
        heartbeat=heartbeat)
    sink = incidents.append if incidents is not None else None
    return ProcessHost(config, policy=policy, on_incident=sink)


SUPERVISED = SupervisorPolicy(supervise=True, heartbeat_interval=0.1,
                              hang_deadline=1.5, max_respawns=2,
                              respawn_backoff=0.0)


class TestProcessHostRecovery:
    def test_sigkill_is_recovered(self):
        incidents = []
        host = _host(SUPERVISED, incidents)
        try:
            host.post(1.0, [])
            host.collect()
            os.kill(host.proc.pid, signal.SIGKILL)
            host.post(2.0, [])
            result = host.collect()
            assert result.next_time == float("inf")
            assert [i.kind for i in incidents] == ["crash"]
            assert incidents[0].windows_replayed == 2
            assert host.respawns == 1
        finally:
            host.close()

    def test_sigstop_trips_hang_watchdog(self):
        incidents = []
        host = _host(SUPERVISED, incidents)
        try:
            host.post(1.0, [])
            host.collect()
            os.kill(host.proc.pid, signal.SIGSTOP)
            host.post(2.0, [])
            result = host.collect()
            assert result.next_time == float("inf")
            assert [i.kind for i in incidents] == ["hang"]
        finally:
            host.close()

    def test_unsupervised_loss_raises_host_failure(self):
        host = _host(SupervisorPolicy(supervise=False,
                                      heartbeat_interval=0.1,
                                      hang_deadline=1.5))
        try:
            os.kill(host.proc.pid, signal.SIGKILL)
            host.post(1.0, [])
            with pytest.raises(HostFailureError, match="supervision off"):
                host.collect()
        finally:
            host.close()

    def test_respawn_budget_exhaustion_raises(self):
        host = _host(SUPERVISED)
        try:
            for boundary in (1.0, 2.0):  # burn the budget of 2
                os.kill(host.proc.pid, signal.SIGKILL)
                host.post(boundary, [])
                host.collect()
            os.kill(host.proc.pid, signal.SIGKILL)
            host.post(3.0, [])
            with pytest.raises(HostFailureError, match="budget"):
                host.collect()
        finally:
            host.close()

    def test_stats_survive_worker_loss(self):
        host = _host(SUPERVISED)
        try:
            host.post(1.0, [])
            host.collect()
            os.kill(host.proc.pid, signal.SIGKILL)
            stats = host.stats()
            assert stats.peak_rss_mb > 0
        finally:
            host.close()

    def test_close_reaps_the_worker(self):
        host = _host(SUPERVISED)
        proc = host.proc
        host.close()
        assert not proc.is_alive()
        assert proc not in _LIVE_WORKERS

    def test_recovery_latency_is_bounded(self):
        # The crash path (dead pid) must recover promptly — it is
        # detected by polling, not by waiting out the hang deadline.
        host = _host(SUPERVISED)
        try:
            host.post(1.0, [])
            host.collect()
            os.kill(host.proc.pid, signal.SIGKILL)
            t0 = time.monotonic()
            host.post(2.0, [])
            host.collect()
            assert time.monotonic() - t0 < SUPERVISED.hang_deadline
        finally:
            host.close()


class TestSupervisedRunDeterminism:
    def test_killed_shard_worker_replays_byte_identical(
            self, tmp_path, monkeypatch):
        """End to end: SIGKILL a live shard worker as it receives a
        window, supervise the run, and require the recovered profile
        byte-identical to the uninterrupted same-seed run."""
        d_ref, _ = _run(ExperimentConfig(**FLUX))

        marker = tmp_path / "crash.marker"
        monkeypatch.setenv("REPRO_CRASH_AT", "shard:0")
        monkeypatch.setenv("REPRO_CRASH_SHARD", "1")
        monkeypatch.setenv("REPRO_CRASH_ONCE", str(marker))
        spec = ResilienceSpec(supervise=True, respawn_backoff=0.0)
        d_rec, result = _run(ExperimentConfig(**FLUX), resilience=spec)
        assert marker.exists(), "crash hook never fired"
        assert d_rec == d_ref
        report = result.host_recovery
        assert report is not None
        assert report["n_crashes"] == 1
        assert report["incidents"][0]["shard"] == 1

    def test_incident_free_supervised_run_is_inert(self):
        d_ref, _ = _run(ExperimentConfig(**FLUX))
        spec = ResilienceSpec(supervise=True)
        d_sup, result = _run(ExperimentConfig(**FLUX), resilience=spec)
        assert d_sup == d_ref
        assert result.host_recovery is None

    def test_modeled_faults_are_not_host_recovered(self, monkeypatch):
        """A modeled node failure (sim-side fault) rides through a
        supervised run untouched — the supervisor only heals *host*
        faults, never simulation outcomes."""
        from repro.experiments.configs import DEFAULT_FAULTS

        cfg = ExperimentConfig(faults=DEFAULT_FAULTS,
                               **{**FLUX, "waves": 2})
        d_ref, r_ref = _run(cfg)
        spec = ResilienceSpec(supervise=True)
        d_sup, r_sup = _run(cfg, resilience=spec)
        assert d_sup == d_ref
        assert r_sup.host_recovery is None
        assert r_sup.faults.to_text() == r_ref.faults.to_text()
