"""ResilienceSpec construction, validation and (de)serialization."""

import pytest

from repro.exceptions import ConfigurationError
from repro.resilience import ResilienceSpec, parse_resilience


class TestSpec:
    def test_defaults_are_inert(self):
        spec = ResilienceSpec()
        assert not spec.checkpointing
        assert not spec.supervise

    def test_checkpointing_property(self):
        assert ResilienceSpec(checkpoint_dir="/tmp/x").checkpointing

    def test_doc_roundtrip(self):
        spec = ResilienceSpec(checkpoint_dir="d", checkpoint_sim_interval=5.0,
                              supervise=True, heartbeat_interval=0.5,
                              hang_deadline=10.0, max_respawns=7,
                              respawn_backoff=0.25)
        assert ResilienceSpec.from_doc(spec.to_doc()) == spec

    def test_from_doc_ignores_unknown_fields(self):
        doc = dict(ResilienceSpec().to_doc(), future_knob=1)
        assert ResilienceSpec.from_doc(doc) == ResilienceSpec()

    @pytest.mark.parametrize("kw", [
        {"checkpoint_sim_interval": 0.0},
        {"checkpoint_sim_interval": -1.0},
        {"checkpoint_wall_interval": -0.5},
        {"heartbeat_interval": 0.0},
        {"hang_deadline": 0.0},
        {"max_respawns": -1},
        {"respawn_backoff": -0.1},
    ])
    def test_validation(self, kw):
        with pytest.raises(ConfigurationError):
            ResilienceSpec(**kw)


class TestParse:
    def test_nothing_requested_is_none(self):
        assert parse_resilience() is None
        assert parse_resilience(checkpoint=None, supervise=False) is None

    def test_checkpoint_dir(self):
        spec = parse_resilience(checkpoint="ck")
        assert spec.checkpoint_dir == "ck" and spec.checkpointing

    def test_intervals_and_supervise(self):
        spec = parse_resilience(checkpoint="ck", checkpoint_every=7.5,
                                checkpoint_wall=30.0, supervise=True)
        assert spec.checkpoint_sim_interval == 7.5
        assert spec.checkpoint_wall_interval == 30.0
        assert spec.supervise

    def test_supervise_alone(self):
        spec = parse_resilience(supervise=True)
        assert spec is not None and not spec.checkpointing
