"""Durable checkpoint/resume: the determinism-under-failure contract.

Pinned here:

* a checkpointing run's trace is **byte-identical** to the same-seed
  run with checkpointing off (the instrumentation is inert);
* ``resume_experiment`` replays to a profile byte-identical to the
  uninterrupted run — both from a mid-run checkpoint (the writer was
  SIGKILLed between ticks) and from a completed one;
* drift (different code/config/seed) is *detected*, never silently
  resumed past;
* the sweep ledger rebuilds finished repetitions without re-running.
"""

import hashlib
import json
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.exceptions import CheckpointError
from repro.experiments.configs import ExperimentConfig
from repro.experiments.harness import (
    resume_experiment,
    run_experiment,
    run_repetitions,
)
from repro.resilience import ResilienceSpec, load_checkpoint
from repro.resilience.checkpoint import (
    SweepLedger,
    config_digest,
    config_from_doc,
    config_to_doc,
    result_from_doc,
    result_to_doc,
    unit_key,
)

SRUN = dict(exp_id="ckpt", launcher="srun", workload="null",
            n_nodes=8, duration=30.0, waves=1, seed=5)

REPO = Path(__file__).resolve().parent.parent.parent


def _digest(result) -> str:
    from repro.analytics.export import write_event_lines

    import io

    buf = io.StringIO()
    write_event_lines(buf, result.session.profiler._events)
    return hashlib.sha256(buf.getvalue().encode()).hexdigest()


def _run(cfg, **kw):
    result = run_experiment(cfg, keep_session=True, **kw)
    digest = _digest(result)
    result.session.close()
    return digest, result


@pytest.fixture(scope="module")
def reference():
    """Uninterrupted same-seed run every variant must match."""
    return _run(ExperimentConfig(**SRUN))


class TestConfigDoc:
    def test_roundtrip(self):
        cfg = ExperimentConfig(**SRUN)
        assert config_from_doc(config_to_doc(cfg)) == cfg
        assert config_digest(config_from_doc(config_to_doc(cfg))) == \
            config_digest(cfg)

    def test_roundtrip_with_faults(self):
        from repro.experiments.configs import DEFAULT_FAULTS

        cfg = ExperimentConfig(faults=DEFAULT_FAULTS, **SRUN)
        clone = config_from_doc(config_to_doc(cfg))
        assert clone.faults == DEFAULT_FAULTS
        assert clone.faults.retry.deadline == DEFAULT_FAULTS.retry.deadline

    def test_digest_tracks_content(self):
        cfg = ExperimentConfig(**SRUN)
        assert config_digest(cfg) != config_digest(replace(cfg, seed=6))


class TestCheckpointedRun:
    def test_checkpointing_is_trace_inert(self, tmp_path, reference):
        d_ref, _ = reference
        spec = ResilienceSpec(checkpoint_dir=str(tmp_path),
                              checkpoint_sim_interval=7.0)
        d_chk, result = _run(ExperimentConfig(**SRUN), resilience=spec)
        assert d_chk == d_ref, \
            "checkpoint ticks perturbed the trace"
        assert result.n_done == result.n_tasks > 0

    def test_checkpoint_document_shape(self, tmp_path):
        spec = ResilienceSpec(checkpoint_dir=str(tmp_path),
                              checkpoint_sim_interval=7.0)
        _run(ExperimentConfig(**SRUN), resilience=spec)
        doc = load_checkpoint(tmp_path)
        assert doc["format"] == "repro-checkpoint"
        assert doc["seed"] == SRUN["seed"]
        assert doc["config_digest"] == config_digest(ExperimentConfig(**SRUN))
        assert doc["n_checkpoints"] >= 2  # ticks + the final complete one
        state = doc["state"]
        assert state["complete"] is True
        assert state["n_events"] > 0
        assert state["kernel"]["queue_digest"]
        assert state["rng_digest"]

    def test_wall_interval_rate_limits_writes(self, tmp_path):
        # A huge wall interval still allows the very first write and
        # the final complete one, but suppresses the ticks between.
        spec = ResilienceSpec(checkpoint_dir=str(tmp_path),
                              checkpoint_sim_interval=2.0,
                              checkpoint_wall_interval=3600.0)
        _run(ExperimentConfig(**SRUN), resilience=spec)
        doc = load_checkpoint(tmp_path)
        assert doc["n_checkpoints"] == 2

    def test_load_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "nowhere")

    def test_load_rejects_tampered_config(self, tmp_path):
        spec = ResilienceSpec(checkpoint_dir=str(tmp_path),
                              checkpoint_sim_interval=7.0)
        _run(ExperimentConfig(**SRUN), resilience=spec)
        path = tmp_path / "checkpoint.json"
        doc = json.loads(path.read_text())
        doc["config"]["seed"] = 999  # digest no longer matches
        path.write_text(json.dumps(doc))
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path)


class TestResume:
    def test_resume_completed_checkpoint_is_byte_identical(
            self, tmp_path, reference):
        d_ref, _ = reference
        spec = ResilienceSpec(checkpoint_dir=str(tmp_path),
                              checkpoint_sim_interval=7.0)
        _run(ExperimentConfig(**SRUN), resilience=spec)
        result = resume_experiment(tmp_path, keep_session=True)
        d_res = _digest(result)
        result.session.close()
        assert d_res == d_ref

    def test_resume_after_midrun_kill_is_byte_identical(
            self, tmp_path, reference):
        """The tentpole: SIGKILL the run between checkpoint ticks,
        resume from the last durable checkpoint, and require the
        recovered profile byte-identical to the uninterrupted run."""
        d_ref, _ = reference
        code = (
            "import sys; sys.path.insert(0, %r)\n"
            "from repro.experiments.configs import ExperimentConfig\n"
            "from repro.experiments.harness import run_experiment\n"
            "from repro.resilience import ResilienceSpec\n"
            "run_experiment(ExperimentConfig(**%r),\n"
            "    resilience=ResilienceSpec(checkpoint_dir=%r,\n"
            "                              checkpoint_sim_interval=5.0))\n"
            % (str(REPO / "src"), SRUN, str(tmp_path))
        )
        env = dict(os.environ, PYTHONHASHSEED="0",
                   REPRO_CRASH_AT="sim:12",
                   REPRO_CRASH_ONCE=str(tmp_path / "crash.marker"))
        proc = subprocess.run([sys.executable, "-c", code], env=env,
                              capture_output=True)
        assert proc.returncode == 137, proc.stderr.decode()
        doc = load_checkpoint(tmp_path)
        assert doc["state"]["complete"] is False
        assert doc["state"]["sim_time"] < 12.0

        result = resume_experiment(tmp_path, keep_session=True)
        d_res = _digest(result)
        result.session.close()
        assert d_res == d_ref

    def test_resume_detects_seed_drift(self, tmp_path):
        spec = ResilienceSpec(checkpoint_dir=str(tmp_path),
                              checkpoint_sim_interval=7.0)
        _run(ExperimentConfig(**SRUN), resilience=spec)
        path = tmp_path / "checkpoint.json"
        doc = json.loads(path.read_text())
        # Forge a consistent checkpoint for a *different* run: the
        # header validates, but the replayed state cannot match.
        forged = config_from_doc(dict(doc["config"], seed=SRUN["seed"] + 1))
        doc["config"]["seed"] = forged.seed
        doc["seed"] = forged.seed
        doc["config_digest"] = config_digest(forged)
        path.write_text(json.dumps(doc))
        with pytest.raises(CheckpointError, match="diverged|watermark"):
            resume_experiment(tmp_path)


class TestSweepLedger:
    def test_result_doc_roundtrip(self):
        cfg = ExperimentConfig(**SRUN)
        result = run_experiment(cfg)
        clone = result_from_doc(cfg, result_to_doc(result))
        assert clone.n_done == result.n_done
        assert clone.throughput.avg == result.throughput.avg
        assert clone.makespan == result.makespan
        assert clone.tasks == []

    def test_ledger_skips_completed_units(self, tmp_path):
        cfg = ExperimentConfig(**SRUN)
        agg1 = run_repetitions(cfg, n_reps=2, checkpoint=tmp_path)
        # The restart rebuilds every repetition from the ledger; a
        # re-simulation would take visible wall time, rebuilding is
        # instant and must aggregate identically.
        agg2 = run_repetitions(cfg, n_reps=2, checkpoint=tmp_path)
        assert agg2.throughput_avg == agg1.throughput_avg
        assert agg2.makespan_avg == agg1.makespan_avg
        ledger = SweepLedger(tmp_path)
        assert ledger.completed(cfg) is not None
        assert ledger.completed(cfg.with_seed(cfg.seed + 1)) is not None
        assert ledger.completed(cfg.with_seed(cfg.seed + 2)) is None

    def test_unit_key_distinguishes_config_and_seed(self):
        cfg = ExperimentConfig(**SRUN)
        assert unit_key(cfg) != unit_key(cfg.with_seed(cfg.seed + 1))
        assert unit_key(cfg) != unit_key(replace(cfg, waves=2))
        assert unit_key(cfg) == unit_key(ExperimentConfig(**SRUN))
