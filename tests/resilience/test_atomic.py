"""Atomic write helpers: all-or-nothing file replacement.

The contract every durable artifact in the repo now rides on
(checkpoints, profiles, bundles, BENCH baselines): a reader never
observes a torn file — only the old content or the new content.
"""

import json
import os

import pytest

from repro.resilience import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)
from repro.resilience.atomic import atomic_writer


class TestAtomicWriter:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.txt"
        with atomic_writer(path) as fh:
            fh.write("hello\n")
        assert path.read_text() == "hello\n"

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        with atomic_writer(path) as fh:
            fh.write("new")
        assert path.read_text() == "new"

    def test_exception_preserves_previous_content(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("precious")
        with pytest.raises(RuntimeError):
            with atomic_writer(path) as fh:
                fh.write("half-writ")
                raise RuntimeError("crash mid-write")
        assert path.read_text() == "precious"

    def test_exception_leaves_no_temp_droppings(self, tmp_path):
        path = tmp_path / "out.txt"
        with pytest.raises(RuntimeError):
            with atomic_writer(path) as fh:
                fh.write("x")
                raise RuntimeError("boom")
        assert list(tmp_path.iterdir()) == []

    def test_rejects_read_modes(self, tmp_path):
        with pytest.raises(ValueError):
            with atomic_writer(tmp_path / "f", mode="r"):
                pass

    def test_temp_file_lives_in_target_directory(self, tmp_path):
        # os.replace is only atomic within one filesystem; staging in
        # the target's own directory guarantees that.
        path = tmp_path / "sub" / "out.txt"
        path.parent.mkdir()
        with atomic_writer(path) as fh:
            names = os.listdir(path.parent)
            assert len(names) == 1 and names[0] != "out.txt"
            fh.write("ok")
        assert os.listdir(path.parent) == ["out.txt"]


class TestHelpers:
    def test_write_text_and_bytes(self, tmp_path):
        atomic_write_text(tmp_path / "t.txt", "text")
        atomic_write_bytes(tmp_path / "b.bin", b"\x00\x01")
        assert (tmp_path / "t.txt").read_text() == "text"
        assert (tmp_path / "b.bin").read_bytes() == b"\x00\x01"

    def test_write_json_is_stable(self, tmp_path):
        doc = {"b": 2, "a": [1, 2]}
        atomic_write_json(tmp_path / "d.json", doc)
        atomic_write_json(tmp_path / "d2.json", dict(reversed(doc.items())))
        assert (tmp_path / "d.json").read_bytes() == \
            (tmp_path / "d2.json").read_bytes()
        assert json.loads((tmp_path / "d.json").read_text()) == doc
        assert (tmp_path / "d.json").read_text().endswith("\n")
