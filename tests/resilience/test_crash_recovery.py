"""Parallel-pool crash recovery: salvage, resubmit, ledger restart.

A pool worker hard-killed by the OS (``BrokenProcessPool``) must not
cost a sweep anything but wall time: landed results are salvaged,
only the missing units are resubmitted, and with a sweep ledger a
fully restarted process skips everything already done.  Results are
identical to the serial loop's either way.
"""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.configs import ExperimentConfig
from repro.experiments.harness import run_repetitions
from repro.resilience import ResilienceSpec

SRUN = dict(exp_id="poolrec", launcher="srun", workload="null",
            n_nodes=8, duration=30.0, waves=1, seed=0)


@pytest.fixture(scope="module")
def serial_reference():
    agg = run_repetitions(ExperimentConfig(**SRUN), n_reps=4)
    return [r.throughput.avg for r in agg.results]


class TestPoolRecovery:
    def test_killed_pool_worker_is_salvaged_and_resubmitted(
            self, tmp_path, monkeypatch, serial_reference):
        monkeypatch.setenv("REPRO_CRASH_AT", "pool:2")
        monkeypatch.setenv("REPRO_CRASH_ONCE",
                           str(tmp_path / "crash.marker"))
        agg = run_repetitions(ExperimentConfig(**SRUN), n_reps=4,
                              parallel=4, checkpoint=tmp_path)
        assert (tmp_path / "crash.marker").exists(), \
            "crash hook never fired"
        assert [r.throughput.avg for r in agg.results] == serial_reference

    def test_ensemble_batch_kill_is_recovered(self, tmp_path, monkeypatch):
        from repro.ensemble import run_ensemble

        cfg = ExperimentConfig(**SRUN)
        ref = run_ensemble(cfg, n_reps=4)
        monkeypatch.setenv("REPRO_CRASH_AT", "pool:2")
        monkeypatch.setenv("REPRO_CRASH_ONCE",
                           str(tmp_path / "crash.marker"))
        rec = run_ensemble(cfg, n_reps=4, parallel=4)
        assert (tmp_path / "crash.marker").exists()
        assert [m.result.throughput.avg for m in rec.members] == \
            [m.result.throughput.avg for m in ref.members]

    def test_ledger_restart_skips_completed_units(
            self, tmp_path, serial_reference):
        run_repetitions(ExperimentConfig(**SRUN), n_reps=4,
                        parallel=4, checkpoint=tmp_path)
        # Restart with the same ledger: every unit rehydrates, nothing
        # re-simulates, the aggregate is unchanged.
        agg = run_repetitions(ExperimentConfig(**SRUN), n_reps=4,
                              parallel=4, checkpoint=tmp_path)
        assert [r.throughput.avg for r in agg.results] == serial_reference
        assert all(r.tasks == [] for r in agg.results)

    def test_run_checkpoints_do_not_compose_with_repetitions(self):
        spec = ResilienceSpec(checkpoint_dir="somewhere")
        with pytest.raises(ConfigurationError, match="ledger"):
            run_repetitions(ExperimentConfig(**SRUN), n_reps=2,
                            resilience=spec)
