"""Property-based N-for-N identity of the ensemble engine.

For any small config across the three single-backend launchers, any
random seed list, and any grouping of that list into separate
ensemble calls (batch boundaries must be invisible), every member's
exported profile must be byte-identical to an independent sequential
``run_experiment`` at that seed — on the vectorized engine all three
launchers now select, and on the replay engine when forced.
"""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import save_profile
from repro.ensemble import run_ensemble
from repro.experiments.configs import ExperimentConfig
from repro.experiments.harness import run_experiment

launchers = st.sampled_from(["srun", "flux", "dragon"])
seed_lists = st.lists(st.integers(min_value=0, max_value=2**31 - 1),
                      min_size=1, max_size=4, unique=True)


def _independent_digest(cfg, seed, tmp_dir, tag):
    result = run_experiment(cfg.with_seed(seed), keep_session=True)
    path = tmp_dir / f"{tag}.jsonl"
    save_profile(result.session.profiler, path)
    result.session.close()
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _split(seeds, batch_size):
    return [seeds[i:i + batch_size]
            for i in range(0, len(seeds), batch_size)]


class TestEnsembleTraceEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(launcher=launchers, seeds=seed_lists,
           n_nodes=st.integers(min_value=1, max_value=2),
           batch_size=st.integers(min_value=1, max_value=4),
           dummy=st.booleans())
    def test_members_match_independent_runs(self, tmp_path_factory,
                                            launcher, seeds, n_nodes,
                                            batch_size, dummy):
        tmp_dir = tmp_path_factory.mktemp("ens-prop")
        cfg = ExperimentConfig(
            exp_id="prop", launcher=launcher,
            workload="dummy" if dummy else "null",
            n_nodes=n_nodes, n_partitions=1,
            duration=3.0 if dummy else 0.0, waves=1, seed=0)
        # Any grouping of the seed list into ensemble calls must be
        # invisible in the per-seed bytes.
        members = []
        for batch in _split(seeds, batch_size):
            ens = run_ensemble(cfg, seeds=batch, keep_profiles=True)
            assert ens.engine == "vectorized", launcher
            members.extend(ens.members)
        for member, seed in zip(members, seeds):
            assert member.seed == seed
            path = tmp_dir / f"member-{seed}.jsonl"
            save_profile(member.profiler, path)
            digest = hashlib.sha256(path.read_bytes()).hexdigest()
            assert digest == _independent_digest(
                cfg, seed, tmp_dir, f"ind-{seed}"), (
                f"{launcher} seed={seed} batch={batch_size}: ensemble "
                f"member trace drifted from the independent run")

    @settings(max_examples=6, deadline=None)
    @given(launcher=launchers, seeds=seed_lists)
    def test_forced_replay_matches_vectorized(self, tmp_path_factory,
                                              launcher, seeds):
        tmp_dir = tmp_path_factory.mktemp("ens-replay-prop")
        cfg = ExperimentConfig(exp_id="prop", launcher=launcher,
                               workload="null", n_nodes=1,
                               n_partitions=1, duration=0.0, waves=1,
                               seed=0)
        fast = run_ensemble(cfg, seeds=seeds, keep_profiles=True,
                            engine="vectorized")
        replay = run_ensemble(cfg, seeds=seeds, keep_profiles=True,
                              engine="replay")
        for mf, mr in zip(fast.members, replay.members):
            pf = tmp_dir / f"fast-{mf.seed}.jsonl"
            pr = tmp_dir / f"replay-{mr.seed}.jsonl"
            save_profile(mf.profiler, pf)
            save_profile(mr.profiler, pr)
            assert pf.read_bytes() == pr.read_bytes(), (
                f"seed={mf.seed}: vectorized and replay engines disagree")
