"""Property-based tests for the DES kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment

delays = st.lists(st.floats(min_value=0.0, max_value=1e6,
                            allow_nan=False, allow_infinity=False),
                  min_size=1, max_size=50)


class TestEventOrdering:
    @given(delays)
    def test_callbacks_fire_in_chronological_order(self, ds):
        env = Environment()
        fired = []
        for d in ds:
            env.schedule(d, fired.append, d)
        env.run()
        assert fired == sorted(ds)

    @given(delays)
    def test_clock_never_goes_backwards(self, ds):
        env = Environment()
        stamps = []
        for d in ds:
            env.schedule(d, lambda: stamps.append(env.now))
        env.run()
        assert stamps == sorted(stamps)

    @given(delays)
    def test_final_time_is_max_delay(self, ds):
        env = Environment()
        for d in ds:
            env.schedule(d, lambda: None)
        env.run()
        assert env.now == max(ds)

    @given(st.lists(st.integers(min_value=0, max_value=5),
                    min_size=1, max_size=30))
    def test_equal_time_events_fifo(self, tags):
        env = Environment()
        fired = []
        for i, tag in enumerate(tags):
            env.schedule(1.0, fired.append, (i, tag))
        env.run()
        assert fired == [(i, t) for i, t in enumerate(tags)]


class TestDeterminism:
    @given(st.integers(min_value=0, max_value=2**31), st.integers(2, 8))
    @settings(max_examples=25)
    def test_identical_seeds_identical_traces(self, seed, n_workers):
        def scenario():
            from repro.sim import Resource, RngStreams

            env = Environment()
            rng = RngStreams(seed)
            res = Resource(env, capacity=2)
            trace = []

            def worker(env, i):
                with res.request() as req:
                    yield req
                    yield env.timeout(rng.lognormal_latency("w", 1.0, 0.5))
                    trace.append((round(env.now, 9), i))

            for i in range(n_workers):
                env.process(worker(env, i))
            env.run()
            return trace

        assert scenario() == scenario()


class TestProcessAlgebra:
    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1,
                    max_size=10))
    def test_all_of_completes_at_max(self, ds):
        env = Environment()

        def sleeper(env, d):
            yield env.timeout(d)
            return d

        procs = [env.process(sleeper(env, d)) for d in ds]
        env.run(env.all_of(procs))
        assert env.now == max(ds)

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1,
                    max_size=10))
    def test_any_of_completes_at_min(self, ds):
        env = Environment()

        def sleeper(env, d):
            yield env.timeout(d)

        procs = [env.process(sleeper(env, d)) for d in ds]
        env.run(env.any_of(procs))
        assert env.now == min(ds)
