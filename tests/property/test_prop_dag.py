"""Property-based tests for the workflow DAG machinery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
)
from repro.platform import generic
from repro.workloads import Workflow, WorkflowRunner

# Random DAGs: node i may depend on any subset of earlier nodes, which
# guarantees acyclicity by construction.
random_dags = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0),   # duration
        st.booleans(),                              # fail flag
        st.sets(st.integers(0, 30), max_size=4),    # raw dep indices
    ),
    min_size=1, max_size=15)


def build(spec):
    wf = Workflow("random")
    for i, (duration, fail, raw_deps) in enumerate(spec):
        deps = tuple(f"n{d % i}" for d in raw_deps if i > 0)
        wf.add(f"n{i}", TaskDescription(duration=duration, fail=fail),
               depends_on=sorted(set(deps)))
    return wf


class TestStructure:
    @given(random_dags)
    def test_construction_yields_valid_dag(self, spec):
        wf = build(spec)
        wf.validate()
        order = wf.topological_order()
        assert sorted(order) == sorted(f"n{i}" for i in range(len(spec)))
        position = {name: i for i, name in enumerate(order)}
        for node in wf.nodes:
            for dep in node.depends_on:
                assert position[dep] < position[node.name]

    @given(random_dags)
    def test_critical_path_bounds(self, spec):
        wf = build(spec)
        total = sum(duration for duration, _, _ in spec)
        longest_single = max(duration for duration, _, _ in spec)
        cp = wf.critical_path_length()
        assert longest_single - 1e-9 <= cp <= total + 1e-9


class TestExecution:
    @given(random_dags, st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_runner_accounts_for_every_node(self, spec, seed):
        session = Session(cluster=generic(4, 8, 1), seed=seed)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("flux"),)))
        tmgr.add_pilot(pilot)
        wf = build(spec)
        runner = WorkflowRunner(session, tmgr, wf)
        session.run(runner.start())
        executed = set(runner.result.tasks)
        skipped = set(runner.result.skipped)
        assert executed | skipped == {f"n{i}" for i in range(len(spec))}
        assert executed.isdisjoint(skipped)
        # Dependency ordering held for every executed edge.
        for node in wf.nodes:
            task = runner.result.tasks.get(node.name)
            if task is None or task.exec_start is None:
                continue
            for dep in node.depends_on:
                dep_task = runner.result.tasks.get(dep)
                assert dep_task is not None  # executed implies deps ran
                assert dep_task.exec_stop is not None
                assert task.exec_start >= dep_task.exec_stop - 1e-6

    @given(random_dags, st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_skips_are_exactly_failure_downstream(self, spec, seed):
        session = Session(cluster=generic(4, 8, 1), seed=seed)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("flux"),)))
        tmgr.add_pilot(pilot)
        wf = build(spec)
        runner = WorkflowRunner(session, tmgr, wf)
        session.run(runner.start())
        # Compute the expected doomed set: transitive closure of
        # failed nodes.
        doomed = set()
        for name in wf.topological_order():
            node = next(n for n in wf.nodes if n.name == name)
            task = runner.result.tasks.get(name)
            failed_here = task is not None and task.state == "FAILED"
            if failed_here or any(d in doomed for d in node.depends_on):
                if not failed_here:
                    doomed.add(name)
                elif failed_here:
                    doomed.update(
                        child.name for child in wf.nodes
                        if name in child.depends_on)
        assert set(runner.result.skipped) <= {
            n.name for n in wf.nodes} - set()
        for name in runner.result.skipped:
            node = next(n for n in wf.nodes if n.name == name)
            # Every skipped node has a failed or skipped dependency.
            assert any(
                (runner.result.tasks.get(d) is not None
                 and not runner.result.tasks[d].succeeded)
                or d in runner.result.skipped
                for d in node.depends_on)
