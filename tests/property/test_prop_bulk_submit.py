"""Property-based equivalence of bulk and legacy task submission.

``TaskManager.submit_tasks(bulk=True)`` admits whole waves through a
batched pipeline (vectorized RNG draws, shared descriptions, one
chained kernel callback per wave).  The contract is strict: for any
same-seed run, the profiler trace must be *byte-identical* to the
per-task legacy path — same events, same timestamps to the last ulp,
same order.  The property is checked across all three single-backend
launchers, with the memory-lean and spill-to-disk modes riding along
(both are also required to be trace-neutral).
"""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import save_profile
from repro.experiments.configs import ExperimentConfig
from repro.experiments.harness import run_experiment

launchers = st.sampled_from(["srun", "flux", "dragon"])
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _digest(cfg, tmp_dir, tag, spill=False, inline=False):
    spill_dir = None
    if spill:
        spill_dir = tmp_dir / f"{tag}-chunks"
    result = run_experiment(cfg, keep_session=True, spill_dir=spill_dir,
                            shard_inline=inline)
    if spill:
        # Shrink the threshold post-hoc is impossible (the run is
        # over), so instead assert spilling was at least configured;
        # forced-spill byte equality is covered by the unit tests.
        assert result.session.profiler.spilling
    path = tmp_dir / f"{tag}.jsonl"
    save_profile(result.session.profiler, path)
    return hashlib.sha256(path.read_bytes()).hexdigest()


class TestBulkSubmitTraceEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(launcher=launchers, seed=seeds,
           n_nodes=st.integers(min_value=1, max_value=4),
           dummy=st.booleans())
    def test_bulk_trace_is_byte_identical(self, tmp_path_factory, launcher,
                                          seed, n_nodes, dummy):
        tmp_dir = tmp_path_factory.mktemp("bulk-prop")
        base = dict(exp_id="base", launcher=launcher,
                    workload="dummy" if dummy else "null",
                    n_nodes=n_nodes, n_partitions=1,
                    duration=3.0 if dummy else 0.0, waves=1, seed=seed)
        legacy = _digest(ExperimentConfig(**base), tmp_dir, "legacy")
        bulk = _digest(ExperimentConfig(bulk=True, **base), tmp_dir, "bulk")
        assert bulk == legacy, (
            f"{launcher} seed={seed}: bulk trace drifted from legacy")
        # lean retention + spilling profiler must not perturb it either
        lean = _digest(ExperimentConfig(bulk=True, lean=True, **base),
                       tmp_dir, "lean", spill=True)
        assert lean == legacy, (
            f"{launcher} seed={seed}: lean/spill trace drifted from legacy")


class TestShardedTraceEquivalence:
    """Sharding's determinism contract, property-tested.

    For srun and dragon (and any config the engine cannot shard) a
    ``shards=N`` run must be byte-identical to the serial path; for a
    sharded flux run, process workers and inline execution must agree
    byte-for-byte with each other for any seed.
    """

    @settings(max_examples=6, deadline=None)
    @given(launcher=st.sampled_from(["srun", "dragon"]), seed=seeds,
           n_nodes=st.integers(min_value=1, max_value=4))
    def test_unshardable_run_is_serial_byte_exact(self, tmp_path_factory,
                                                  launcher, seed, n_nodes):
        tmp_dir = tmp_path_factory.mktemp("shard-prop")
        base = dict(exp_id="base", launcher=launcher, workload="null",
                    n_nodes=n_nodes, n_partitions=1, duration=0.0,
                    waves=1, seed=seed)
        serial = _digest(ExperimentConfig(**base), tmp_dir, "serial")
        sharded = _digest(ExperimentConfig(shards=2, **base), tmp_dir,
                          "sharded")
        assert sharded == serial, (
            f"{launcher} seed={seed}: hostless sharded trace drifted")

    @settings(max_examples=6, deadline=None)
    @given(seed=seeds, n_parts=st.integers(min_value=2, max_value=4))
    def test_flux_shard_process_equals_inline(self, tmp_path_factory, seed,
                                              n_parts):
        tmp_dir = tmp_path_factory.mktemp("shard-flux-prop")
        base = dict(exp_id="base", launcher="flux", workload="null",
                    n_nodes=4, n_partitions=n_parts, duration=0.0,
                    waves=1, seed=seed, shards=2)
        proc = _digest(ExperimentConfig(**base), tmp_dir, "proc")
        inline = _digest(ExperimentConfig(**base), tmp_dir, "inline",
                         inline=True)
        assert proc == inline, (
            f"flux seed={seed} parts={n_parts}: process workers drifted "
            f"from inline execution")
