"""Property-based equivalence of bulk and legacy task submission.

``TaskManager.submit_tasks(bulk=True)`` admits whole waves through a
batched pipeline (vectorized RNG draws, shared descriptions, one
chained kernel callback per wave).  The contract is strict: for any
same-seed run, the profiler trace must be *byte-identical* to the
per-task legacy path — same events, same timestamps to the last ulp,
same order.  The property is checked across all three single-backend
launchers, with the memory-lean and spill-to-disk modes riding along
(both are also required to be trace-neutral).
"""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import save_profile
from repro.experiments.configs import ExperimentConfig
from repro.experiments.harness import run_experiment

launchers = st.sampled_from(["srun", "flux", "dragon"])
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _digest(cfg, tmp_dir, tag, spill=False):
    spill_dir = None
    if spill:
        spill_dir = tmp_dir / f"{tag}-chunks"
    result = run_experiment(cfg, keep_session=True, spill_dir=spill_dir)
    if spill:
        # Shrink the threshold post-hoc is impossible (the run is
        # over), so instead assert spilling was at least configured;
        # forced-spill byte equality is covered by the unit tests.
        assert result.session.profiler.spilling
    path = tmp_dir / f"{tag}.jsonl"
    save_profile(result.session.profiler, path)
    return hashlib.sha256(path.read_bytes()).hexdigest()


class TestBulkSubmitTraceEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(launcher=launchers, seed=seeds,
           n_nodes=st.integers(min_value=1, max_value=4),
           dummy=st.booleans())
    def test_bulk_trace_is_byte_identical(self, tmp_path_factory, launcher,
                                          seed, n_nodes, dummy):
        tmp_dir = tmp_path_factory.mktemp("bulk-prop")
        base = dict(exp_id="base", launcher=launcher,
                    workload="dummy" if dummy else "null",
                    n_nodes=n_nodes, n_partitions=1,
                    duration=3.0 if dummy else 0.0, waves=1, seed=seed)
        legacy = _digest(ExperimentConfig(**base), tmp_dir, "legacy")
        bulk = _digest(ExperimentConfig(bulk=True, **base), tmp_dir, "bulk")
        assert bulk == legacy, (
            f"{launcher} seed={seed}: bulk trace drifted from legacy")
        # lean retention + spilling profiler must not perturb it either
        lean = _digest(ExperimentConfig(bulk=True, lean=True, **base),
                       tmp_dir, "lean", spill=True)
        assert lean == legacy, (
            f"{launcher} seed={seed}: lean/spill trace drifted from legacy")
