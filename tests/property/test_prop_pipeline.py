"""Property-based end-to-end tests: task conservation and resource
safety under randomized workloads, backend mixes and fault injection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
    TaskState,
)
from repro.platform import generic

task_specs = st.lists(
    st.tuples(
        st.sampled_from(["executable", "function"]),
        st.floats(min_value=0.0, max_value=30.0),   # duration
        st.booleans(),                              # fail flag
        st.integers(min_value=0, max_value=2),      # retries
    ),
    min_size=1, max_size=25)

backend_sets = st.sampled_from([
    ("flux",),
    ("dragon",),
    ("flux", "dragon"),
    ("srun", "dragon"),
    ("flux", "srun", "dragon"),
])


def run_mix(specs, backends, seed):
    session = Session(cluster=generic(6, 4, 1), seed=seed)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    parts = tuple(PartitionSpec(b) for b in backends)
    pilot = pmgr.submit_pilots(PilotDescription(nodes=6, partitions=parts))
    tmgr.add_pilot(pilot)
    tasks = tmgr.submit_tasks([
        TaskDescription(mode=mode, duration=dur, fail=fail, retries=retries)
        for mode, dur, fail, retries in specs])
    session.run(tmgr.wait_tasks())
    return session, pilot, tasks


class TestConservation:
    @given(task_specs, backend_sets, st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_every_task_reaches_exactly_one_final_state(
            self, specs, backends, seed):
        _, _, tasks = run_mix(specs, backends, seed)
        assert all(t.is_final for t in tasks)
        for task in tasks:
            finals = [s for _, s in task.state_history
                      if s in TaskState.FINAL]
            assert len(finals) == 1

    @given(task_specs, backend_sets, st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_outcomes_match_fault_injection(self, specs, backends, seed):
        _, _, tasks = run_mix(specs, backends, seed)
        for task in tasks:
            if task.description.fail:
                assert task.state == TaskState.FAILED
                # Every retry was consumed before giving up (attempts
                # counts the first try plus each retry).
                assert task.attempts == task.description.retries + 1
            else:
                assert task.state == TaskState.DONE

    @given(task_specs, backend_sets, st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_no_resource_leak(self, specs, backends, seed):
        _, pilot, _ = run_mix(specs, backends, seed)
        for ex in pilot.agent.executors.values():
            assert ex.allocation.free_cores == ex.allocation.total_cores
            assert ex.allocation.free_gpus == ex.allocation.total_gpus
            assert ex.n_active == 0

    @given(task_specs, backend_sets, st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_trace_passes_linter(self, specs, backends, seed):
        from repro.analytics import assert_valid_trace

        session, _, _ = run_mix(specs, backends, seed)
        assert_valid_trace(session.profiler,
                           total_cores=session.cluster.total_cores)

    @given(task_specs, backend_sets, st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_exec_intervals_consistent(self, specs, backends, seed):
        _, _, tasks = run_mix(specs, backends, seed)
        for task in tasks:
            if task.exec_start is not None and task.exec_stop is not None \
                    and not task.description.fail and task.attempts == 1:
                measured = task.exec_stop - task.exec_start
                # Completion-notification skew is sub-millisecond.
                assert measured >= task.description.duration - 1e-9
                assert measured <= task.description.duration + 0.01
