"""Property-based tests for scheduler non-oversubscription invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flux import FcfsPolicy, EasyBackfillPolicy, FluxJob, Jobspec
from repro.platform import ResourceSpec, generic

job_lists = st.lists(
    st.tuples(st.integers(1, 32), st.floats(1.0, 500.0), st.integers(0, 31)),
    min_size=1, max_size=30)


def make_jobs(rows):
    return [FluxJob(job_id=f"j{i}", spec=Jobspec(
        command="x", resources=ResourceSpec(cores=cores), duration=dur,
        urgency=urg)) for i, (cores, dur, urg) in enumerate(rows)]


class TestPolicyInvariants:
    @given(job_lists, st.integers(1, 6), st.integers(1, 8))
    @settings(max_examples=80)
    def test_fcfs_never_oversubscribes(self, rows, n_nodes, cpn):
        alloc = generic(n_nodes, cores_per_node=cpn).allocate_nodes(n_nodes)
        jobs = make_jobs(rows)
        matches = FcfsPolicy().match(jobs, alloc, [], now=0.0)
        placed_cores = sum(p.cores for _, pls in matches for p in pls)
        assert placed_cores <= alloc.total_cores
        assert placed_cores + alloc.free_cores == alloc.total_cores

    @given(job_lists, st.integers(1, 6), st.integers(1, 8))
    @settings(max_examples=80)
    def test_easy_never_oversubscribes(self, rows, n_nodes, cpn):
        alloc = generic(n_nodes, cores_per_node=cpn).allocate_nodes(n_nodes)
        jobs = make_jobs(rows)
        matches = EasyBackfillPolicy().match(jobs, alloc, [], now=0.0)
        placed_cores = sum(p.cores for _, pls in matches for p in pls)
        assert placed_cores + alloc.free_cores == alloc.total_cores

    @given(job_lists, st.integers(2, 6))
    @settings(max_examples=80)
    def test_easy_matches_superset_of_fcfs_count(self, rows, n_nodes):
        """Backfill never schedules fewer jobs than strict FCFS."""
        jobs = make_jobs(rows)
        alloc1 = generic(n_nodes).allocate_nodes(n_nodes)
        fcfs = FcfsPolicy().match(list(jobs), alloc1, [], now=0.0)
        jobs2 = make_jobs(rows)
        alloc2 = generic(n_nodes).allocate_nodes(n_nodes)
        easy = EasyBackfillPolicy().match(list(jobs2), alloc2, [], now=0.0)
        assert len(easy) >= len(fcfs)

    @given(job_lists, st.integers(1, 6))
    @settings(max_examples=50)
    def test_matched_jobs_unique(self, rows, n_nodes):
        alloc = generic(n_nodes).allocate_nodes(n_nodes)
        jobs = make_jobs(rows)
        matches = FcfsPolicy().match(jobs, alloc, [], now=0.0)
        ids = [j.job_id for j, _ in matches]
        assert len(ids) == len(set(ids))
