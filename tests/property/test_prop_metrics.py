"""Property-based tests for metric identities."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import throughput, utilization
from repro.core import TaskDescription
from repro.core.states import TaskState
from repro.core.task import Task
from repro.platform import ResourceSpec
from repro.sim import Environment

intervals = st.lists(
    st.tuples(st.floats(0, 1e4, allow_nan=False),
              st.floats(0.001, 1e3, allow_nan=False),
              st.integers(1, 64)),
    min_size=1, max_size=40)


def build_tasks(rows):
    env = Environment()
    tasks = []
    for i, (start, dur, cores) in enumerate(rows):
        task = Task(env, f"t{i}", TaskDescription(
            resources=ResourceSpec(cores=cores)))
        task.advance(TaskState.TMGR_SCHEDULING)
        task.advance(TaskState.AGENT_SCHEDULING)
        env._now = start
        task.advance(TaskState.AGENT_EXECUTING)
        env._now = start + dur
        task.mark_exec_stop()
        task.advance(TaskState.DONE)
        tasks.append(task)
    return tasks


class TestUtilizationBounds:
    @given(intervals)
    @settings(max_examples=100)
    def test_bounded_by_capacity(self, rows):
        tasks = build_tasks(rows)
        # With capacity >= sum of all task cores, concurrent use can
        # never exceed 1.0.
        capacity = sum(c for _, _, c in rows)
        u = utilization(tasks, total_cores=capacity)
        assert 0.0 <= u <= 1.0 + 1e-9

    @given(intervals)
    @settings(max_examples=100)
    def test_monotone_in_capacity(self, rows):
        tasks = build_tasks(rows)
        cap = sum(c for _, _, c in rows)
        assert utilization(tasks, cap) >= utilization(tasks, cap * 2) - 1e-12

    @given(intervals, st.floats(0, 1e4), st.floats(1, 1e4))
    @settings(max_examples=100)
    def test_span_clipping_never_negative(self, rows, t0, width):
        tasks = build_tasks(rows)
        u = utilization(tasks, total_cores=1000, span=(t0, t0 + width))
        assert u >= 0.0


class TestThroughputProperties:
    @given(st.lists(st.floats(0, 1e5, allow_nan=False), min_size=2,
                    max_size=200))
    @settings(max_examples=100)
    def test_nonnegative_and_consistent(self, starts):
        arr = np.sort(np.array(starts))
        stats = throughput(arr)
        assert stats.n_tasks == len(starts)
        assert stats.avg >= 0.0
        assert stats.peak >= 0.0
        if np.isfinite(stats.avg) and stats.window > 1.0:
            # Peak binned rate is never below the overall average
            # (pigeonhole over the bins covering the window).
            assert stats.peak >= stats.avg * 0.5

    @given(st.integers(2, 100), st.floats(0.001, 10.0))
    def test_uniform_spacing_exact(self, n, gap):
        arr = np.arange(n) * gap
        stats = throughput(arr)
        assert abs(stats.avg - n / ((n - 1) * gap)) / stats.avg < 1e-9
