"""Property-based tests for the MPI cost model."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.mpi import (
    CommParams,
    allreduce_time,
    alltoall_time,
    barrier_time,
    bcast_time,
    ptp_time,
)

params = st.builds(
    CommParams,
    intra_node_latency=st.floats(1e-8, 1e-4),
    inter_node_latency=st.floats(1e-7, 1e-3),
    bandwidth=st.floats(1e8, 1e12))

ranks = st.integers(1, 4096)
sizes = st.floats(0.0, 1e12)


class TestModelProperties:
    @given(params, ranks, sizes)
    def test_all_collectives_nonnegative(self, p, n, nbytes):
        for fn in (bcast_time, allreduce_time, alltoall_time):
            assert fn(p, n, nbytes) >= 0.0
        assert barrier_time(p, n) >= 0.0
        assert ptp_time(p, nbytes) >= 0.0

    @given(params, st.integers(2, 2048), sizes)
    def test_monotone_in_ranks(self, p, n, nbytes):
        for fn in (bcast_time, allreduce_time, alltoall_time):
            assert fn(p, 2 * n, nbytes) >= fn(p, n, nbytes) - 1e-15
        assert barrier_time(p, 2 * n) >= barrier_time(p, n)

    @given(params, ranks, st.floats(0.0, 1e11))
    def test_monotone_in_bytes(self, p, n, nbytes):
        for fn in (bcast_time, allreduce_time, alltoall_time):
            assert fn(p, n, 2 * nbytes + 1) >= fn(p, n, nbytes) - 1e-15

    @given(params, st.integers(2, 4096), sizes)
    def test_intra_node_never_slower(self, p, n, nbytes):
        # The invariant presumes a sane fabric (on-node hops are not
        # slower than cross-node ones).
        assume(p.intra_node_latency <= p.inter_node_latency)
        for fn in (bcast_time, allreduce_time, alltoall_time):
            assert (fn(p, n, nbytes, spans_nodes=False)
                    <= fn(p, n, nbytes, spans_nodes=True) + 1e-15)

    @given(params, st.integers(2, 4096), st.floats(1.0, 1e10))
    def test_allreduce_bandwidth_bound(self, p, n, nbytes):
        """Rabenseifner's bandwidth term is < 2 full message transfers."""
        pure_bw = allreduce_time(
            CommParams(intra_node_latency=0.0, inter_node_latency=0.0,
                       bandwidth=p.bandwidth), n, nbytes)
        assert pure_bw <= 2 * nbytes / p.bandwidth + 1e-12
