"""Property-based tests for resource-allocation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ResourceError
from repro.platform import Node, ResourceSpec, generic
from repro.sim import Environment, Resource


class TestNodeInvariants:
    @given(st.integers(1, 64),
           st.lists(st.integers(1, 16), min_size=1, max_size=30))
    def test_no_slot_oversubscription(self, n_cores, requests):
        """Granted slots are always disjoint and within capacity."""
        node = Node(0, n_cores)
        held = []
        for req in requests:
            try:
                held.append(node.allocate(req))
            except ResourceError:
                continue
        slots = [s for pl in held for s in pl.core_slots]
        assert len(slots) == len(set(slots))
        assert len(slots) <= n_cores
        assert node.free_cores == n_cores - len(slots)

    @given(st.integers(1, 32),
           st.lists(st.tuples(st.integers(1, 8), st.booleans()),
                    min_size=1, max_size=40))
    def test_alloc_release_conserves_capacity(self, n_cores, ops):
        node = Node(0, n_cores)
        held = []
        for cores, release in ops:
            if release and held:
                node.release(held.pop())
            else:
                try:
                    held.append(node.allocate(cores))
                except ResourceError:
                    pass
        for pl in held:
            node.release(pl)
        assert node.is_idle


class TestAllocationInvariants:
    @given(st.integers(1, 8), st.integers(1, 8),
           st.lists(st.integers(1, 40), min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_try_place_all_or_nothing(self, n_nodes, cpn, requests):
        alloc = generic(n_nodes, cores_per_node=cpn).allocate_nodes(n_nodes)
        total = alloc.total_cores
        placed = []
        for cores in requests:
            pls = alloc.try_place(ResourceSpec(cores=cores))
            if pls is None:
                # Nothing may have been claimed by a failed placement.
                continue
            assert sum(p.cores for p in pls) == cores
            placed.append(pls)
        used = sum(p.cores for pls in placed for p in pls)
        assert used + alloc.free_cores == total
        for pls in placed:
            alloc.release(pls)
        assert alloc.free_cores == total

    @given(st.integers(2, 12), st.integers(1, 12))
    def test_partition_covers_exactly(self, n_nodes, k):
        if k > n_nodes:
            return
        alloc = generic(n_nodes).allocate_nodes(n_nodes)
        parts = alloc.partition(k)
        indices = sorted(n.index for p in parts for n in p.nodes)
        assert indices == sorted(n.index for n in alloc.nodes)
        sizes = [p.n_nodes for p in parts]
        assert max(sizes) - min(sizes) <= 1


class TestSemaphoreInvariants:
    @given(st.integers(1, 8), st.integers(1, 40))
    @settings(max_examples=40)
    def test_concurrency_never_exceeds_capacity(self, capacity, n_procs):
        env = Environment()
        res = Resource(env, capacity=capacity)
        peak = [0]

        def worker(env):
            with res.request() as req:
                yield req
                peak[0] = max(peak[0], res.count)
                yield env.timeout(1.0)

        for _ in range(n_procs):
            env.process(worker(env))
        env.run()
        assert peak[0] <= capacity
        assert res.count == 0
