"""Property-based tests for the task state machine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TaskDescription
from repro.core.states import TaskState
from repro.core.task import Task
from repro.exceptions import StateTransitionError
from repro.sim import Environment

ALL_STATES = [
    TaskState.NEW, TaskState.TMGR_SCHEDULING, TaskState.AGENT_STAGING_INPUT,
    TaskState.AGENT_SCHEDULING, TaskState.AGENT_EXECUTING,
    TaskState.AGENT_STAGING_OUTPUT, TaskState.DONE, TaskState.FAILED,
    TaskState.CANCELED,
]


class TestRandomWalks:
    @given(st.lists(st.sampled_from(ALL_STATES), min_size=1, max_size=20))
    @settings(max_examples=200)
    def test_walks_respect_transition_table(self, walk):
        """Following any state sequence either succeeds step-by-step per
        the table, or raises exactly at the first illegal hop."""
        env = Environment()
        task = Task(env, "t", TaskDescription())
        for target in walk:
            legal = target in TaskState.TRANSITIONS[task.state]
            if legal:
                task.advance(target)
                assert task.state == target
            else:
                with pytest.raises(StateTransitionError):
                    task.advance(target)
                break

    @given(st.lists(st.sampled_from(ALL_STATES), min_size=1, max_size=30))
    @settings(max_examples=200)
    def test_final_state_is_absorbing(self, walk):
        env = Environment()
        task = Task(env, "t", TaskDescription())
        for target in walk:
            try:
                task.advance(target)
            except StateTransitionError:
                continue
            if task.is_final:
                final = task.state
                for other in ALL_STATES:
                    if other == final:
                        continue
                    with pytest.raises(StateTransitionError):
                        task.advance(other)
                return

    @given(st.lists(st.sampled_from(ALL_STATES), min_size=1, max_size=30))
    @settings(max_examples=100)
    def test_history_is_monotone_in_time(self, walk):
        env = Environment()
        task = Task(env, "t", TaskDescription())
        t = 0.0
        for target in walk:
            t += 1.0
            env._now = t
            try:
                task.advance(target)
            except StateTransitionError:
                pass
        times = [ts for ts, _ in task.state_history]
        assert times == sorted(times)

    def test_every_nonfinal_state_can_reach_done(self):
        """Reachability: DONE is reachable from every non-final state."""
        for state in ALL_STATES:
            if state in TaskState.FINAL:
                continue
            # BFS over the transition table.
            frontier, seen = {state}, set()
            while frontier:
                cur = frontier.pop()
                seen.add(cur)
                frontier |= TaskState.TRANSITIONS[cur] - seen
            assert TaskState.DONE in seen, state
