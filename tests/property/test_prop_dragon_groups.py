"""Property-based tests for Dragon process groups."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dragon import (
    DragonGroup,
    DragonGroupCompletion,
    DragonRuntime,
    DragonTask,
    MODE_FUNC,
)
from repro.platform import FRONTIER_LATENCIES, generic
from repro.sim import Environment, RngStreams

group_specs = st.lists(
    st.tuples(st.integers(1, 8),                     # group size
              st.floats(0.1, 20.0)),                 # duration
    min_size=1, max_size=5)


def run_groups(specs, seed):
    env = Environment()
    rng = RngStreams(seed)
    alloc = generic(2).allocate_nodes(2)  # 16 workers
    rt = DragonRuntime(env, alloc, FRONTIER_LATENCIES, rng,
                       instance_id="pg.prop")
    env.run(env.process(rt.start()))
    total_ranks = 0
    for i, (size, duration) in enumerate(specs):
        ranks = tuple(DragonTask(task_id=f"g{i}.r{j}", mode=MODE_FUNC,
                                 duration=duration) for j in range(size))
        rt.submit_group(DragonGroup(group_id=f"g{i}", ranks=ranks))
        total_ranks += size
    messages = []

    def watch(env, rt, n):
        for _ in range(n):
            messages.append((yield rt.completion_pipe.recv()))

    env.process(watch(env, rt, total_ranks + len(specs)))
    env.run()
    return rt, messages, total_ranks


class TestGroupProperties:
    @given(group_specs, st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_every_rank_and_group_completes(self, specs, seed):
        rt, messages, total_ranks = run_groups(specs, seed)
        groups = [m for m in messages
                  if isinstance(m, DragonGroupCompletion)]
        ranks = [m for m in messages
                 if not isinstance(m, DragonGroupCompletion)]
        assert len(groups) == len(specs)
        assert len(ranks) == total_ranks
        assert all(g.ok for g in groups)
        assert all(r.ok for r in ranks)

    @given(group_specs, st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_group_spans_cover_rank_spans(self, specs, seed):
        rt, messages, _ = run_groups(specs, seed)
        groups = {m.group_id: m for m in messages
                  if isinstance(m, DragonGroupCompletion)}
        for m in messages:
            if isinstance(m, DragonGroupCompletion):
                continue
            gid = m.task_id.split(".")[0]
            group = groups[gid]
            assert group.start_time <= m.start_time + 1e-9
            assert m.stop_time <= group.stop_time + 1e-9

    @given(group_specs, st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_pool_fully_recovered(self, specs, seed):
        rt, _, _ = run_groups(specs, seed)
        assert rt.pool.busy == 0
        assert rt.pool.idle == rt.pool.capacity
