"""Property-based tests for channel FIFO semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dragon import ShmemChannel, ZmqPipe
from repro.sim import Environment

payloads = st.lists(st.integers(), min_size=1, max_size=60)


class TestZmqPipeFifo:
    @given(payloads)
    def test_messages_arrive_in_order(self, items):
        env = Environment()
        pipe = ZmqPipe(env, latency=0.001)
        received = []

        def consumer(env, pipe, n):
            for _ in range(n):
                msg = yield pipe.recv()
                received.append(msg)

        env.process(consumer(env, pipe, len(items)))
        for item in items:
            pipe.send(item)
        env.run()
        assert received == items

    @given(payloads, st.floats(min_value=0.0, max_value=1.0))
    def test_no_message_lost_or_duplicated(self, items, latency):
        env = Environment()
        pipe = ZmqPipe(env, latency=latency)
        received = []

        def consumer(env, pipe, n):
            for _ in range(n):
                received.append((yield pipe.recv()))

        env.process(consumer(env, pipe, len(items)))
        for item in items:
            pipe.send(item)
        env.run()
        assert received == items


class TestShmemFifo:
    @given(payloads, st.integers(min_value=1, max_value=8))
    @settings(max_examples=50)
    def test_bounded_channel_preserves_order_and_count(self, items, capacity):
        env = Environment()
        chan = ShmemChannel(env, capacity=capacity, hop_latency=1e-6)
        received = []

        def producer(env, chan):
            for item in items:
                yield from chan.put(item)

        def consumer(env, chan):
            for _ in range(len(items)):
                received.append((yield chan.get()))

        env.process(producer(env, chan))
        env.process(consumer(env, chan))
        env.run()
        assert received == items

    @given(payloads, st.integers(min_value=1, max_value=4))
    @settings(max_examples=30)
    def test_occupancy_never_exceeds_capacity(self, items, capacity):
        env = Environment()
        chan = ShmemChannel(env, capacity=capacity, hop_latency=1e-6)
        peak = [0]

        def producer(env, chan):
            for item in items:
                yield from chan.put(item)
                peak[0] = max(peak[0], len(chan))

        def consumer(env, chan):
            for _ in range(len(items)):
                yield env.timeout(0.01)
                yield chan.get()

        env.process(producer(env, chan))
        env.process(consumer(env, chan))
        env.run()
        assert peak[0] <= capacity
