"""Package-level tests: public API surface, ids, exceptions."""

import pytest

import repro
from repro.exceptions import (
    AllocationError,
    ChannelError,
    ConfigurationError,
    DragonError,
    JobspecError,
    LaunchError,
    ReproError,
    ResourceError,
    RuntimeStartupError,
    SchedulingError,
    SimulationError,
    SrunCeilingError,
    StateTransitionError,
    WorkloadError,
)
from repro.ids import IdRegistry, generate_id


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports(self):
        for name in ("Session", "PilotDescription", "PartitionSpec",
                     "TaskDescription", "ResourceSpec", "frontier"):
            assert hasattr(repro, name), name

    def test_all_subpackages_import(self):
        import repro.analytics
        import repro.core
        import repro.dragon
        import repro.experiments
        import repro.flux
        import repro.mpi
        import repro.platform
        import repro.rjms
        import repro.sim
        import repro.workloads

    def test_all_lists_are_importable(self):
        """Every name in each subpackage's __all__ actually exists."""
        import importlib

        for module_name in ("repro", "repro.sim", "repro.platform",
                            "repro.rjms", "repro.flux", "repro.dragon",
                            "repro.mpi", "repro.core", "repro.workloads",
                            "repro.analytics", "repro.experiments"):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", ()):
                assert hasattr(module, name), f"{module_name}.{name}"


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (SimulationError, ResourceError, AllocationError,
                    SchedulingError, StateTransitionError, JobspecError,
                    LaunchError, SrunCeilingError, RuntimeStartupError,
                    DragonError, ChannelError, ConfigurationError,
                    WorkloadError):
            assert issubclass(exc, ReproError), exc

    def test_specialization_chains(self):
        assert issubclass(AllocationError, ResourceError)
        assert issubclass(SrunCeilingError, LaunchError)
        assert issubclass(ChannelError, DragonError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise JobspecError("x")


class TestIds:
    def test_sequential_per_prefix(self):
        reg = IdRegistry()
        assert reg.next("task") == "task.000000"
        assert reg.next("task") == "task.000001"
        assert reg.next("pilot") == "pilot.000000"

    def test_count(self):
        reg = IdRegistry()
        assert reg.count("x") == 0
        reg.next("x")
        reg.next("x")
        assert reg.count("x") == 2

    def test_registries_independent(self):
        a, b = IdRegistry(), IdRegistry()
        a.next("t")
        assert b.next("t") == "t.000000"

    def test_module_level_generator(self):
        first = generate_id("modtest")
        second = generate_id("modtest")
        assert first != second
        assert first.startswith("modtest.")
