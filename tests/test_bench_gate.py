"""The CI benchmark regression gate (tools/bench_gate.py)."""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_gate",
    Path(__file__).resolve().parent.parent / "tools" / "bench_gate.py")
bench_gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_gate)


class TestExtractRates:
    def test_flat_and_nested(self):
        doc = {
            "tasks_per_wall_second": 100.0,
            "tasks_per_wall_second_disabled": 90.0,
            "other": 5.0,
            "points": [{"tasks_per_wall_second": 50.0, "n_nodes": 9408}],
        }
        rates = {p: v for p, v, _ in bench_gate.extract_rates(doc)}
        assert rates == {
            "tasks_per_wall_second": 100.0,
            "tasks_per_wall_second_disabled": 90.0,
            "points.9408n.tasks_per_wall_second": 50.0,
        }

    def test_non_numeric_metric_ignored(self):
        assert list(bench_gate.extract_rates(
            {"tasks_per_wall_second": "fast"})) == []

    def test_labels_are_content_derived_not_positional(self):
        # Reordering or inserting points must not shift the labels:
        # each point compares against its own baseline entry.
        a = {"n_nodes": 588, "n_partitions": 4, "tasks_per_wall_second": 1.0}
        b = {"n_nodes": 9408, "n_partitions": 64, "n_shards": 2,
             "tasks_per_wall_second": 2.0}
        forward = {p: v for p, v, _ in
                   bench_gate.extract_rates({"points": [a, b]})}
        reordered = {p: v for p, v, _ in
                     bench_gate.extract_rates({"points": [b, a]})}
        assert forward == reordered == {
            "points.588n4p.tasks_per_wall_second": 1.0,
            "points.9408n64px2shards.tasks_per_wall_second": 2.0,
        }

    def test_unlabelled_entries_stay_positional(self):
        rates = {p: v for p, v, _ in bench_gate.extract_rates(
            {"runs": [{"tasks_per_wall_second": 3.0}]})}
        assert rates == {"runs[0].tasks_per_wall_second": 3.0}


class TestCompare:
    def test_within_threshold_passes(self):
        failures, notes = bench_gate.compare(
            {"tasks_per_wall_second": 80.0},
            {"tasks_per_wall_second": 100.0}, threshold=0.25)
        assert failures == []
        assert len(notes) == 1

    def test_regression_fails(self):
        failures, _ = bench_gate.compare(
            {"tasks_per_wall_second": 70.0},
            {"tasks_per_wall_second": 100.0}, threshold=0.25)
        assert len(failures) == 1
        assert "0.70x" in failures[0]

    def test_improvement_passes(self):
        failures, _ = bench_gate.compare(
            {"tasks_per_wall_second": 130.0},
            {"tasks_per_wall_second": 100.0}, threshold=0.25)
        assert failures == []

    def test_new_metric_skipped(self):
        failures, notes = bench_gate.compare(
            {"tasks_per_wall_second_enabled": 50.0}, {}, threshold=0.25)
        assert failures == []
        assert "no baseline" in notes[0]

    def test_nested_points_compared(self):
        failures, _ = bench_gate.compare(
            {"points": [{"tasks_per_wall_second": 10.0}]},
            {"points": [{"tasks_per_wall_second": 100.0}]}, threshold=0.25)
        assert len(failures) == 1

    def test_cost_metric_is_extracted_as_cost(self):
        kinds = {p: k for p, _, k in bench_gate.extract_rates(
            {"checkpoint_overhead": 0.02, "recovery_seconds_median": 0.01,
             "tasks_per_wall_second": 10.0})}
        assert kinds["checkpoint_overhead"] == "cost"
        assert kinds["recovery_seconds_median"] == "cost"
        assert kinds["tasks_per_wall_second"] == "rate"

    def test_cost_within_ceiling_passes(self):
        # Costs gate the other way: rising is the regression.  The
        # slack is absolute, so a 0 -> 0.05 move on a near-zero cost
        # does not trip a ratio explosion.
        failures, notes = bench_gate.compare(
            {"checkpoint_overhead": 0.05},
            {"checkpoint_overhead": 0.0}, threshold=0.25)
        assert failures == []
        assert "ceiling" in notes[0]

    def test_cost_rise_past_ceiling_fails(self):
        failures, _ = bench_gate.compare(
            {"checkpoint_overhead": 0.40},
            {"checkpoint_overhead": 0.02}, threshold=0.25)
        assert len(failures) == 1
        assert "ceiling" in failures[0]

    def test_cost_drop_passes(self):
        failures, _ = bench_gate.compare(
            {"recovery_seconds_median": 0.001},
            {"recovery_seconds_median": 0.5}, threshold=0.25)
        assert failures == []


class TestEndToEnd:
    def _repo(self, tmp_path, baseline_rate):
        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        subprocess.run(["git", "-c", "user.email=t@t", "-c", "user.name=t",
                        "commit", "-q", "--allow-empty", "-m", "seed"],
                       cwd=tmp_path, check=True)
        bench = tmp_path / "BENCH_kernel.json"
        bench.write_text(json.dumps(
            {"tasks_per_wall_second": baseline_rate}))
        subprocess.run(["git", "add", "BENCH_kernel.json"],
                       cwd=tmp_path, check=True)
        subprocess.run(["git", "-c", "user.email=t@t", "-c", "user.name=t",
                        "commit", "-q", "-m", "baseline"],
                       cwd=tmp_path, check=True)
        return bench

    def _run_gate(self, tmp_path, *args):
        gate = Path(bench_gate.__file__)
        # run from a tools/-like layout inside the temp repo so the
        # script resolves tmp_path as its repo root
        tools = tmp_path / "tools"
        tools.mkdir(exist_ok=True)
        (tools / "bench_gate.py").write_text(gate.read_text())
        return subprocess.run(
            [sys.executable, str(tools / "bench_gate.py"), *args],
            capture_output=True, text=True, cwd=tmp_path)

    def test_pass_and_fail_paths(self, tmp_path):
        bench = self._repo(tmp_path, 100.0)
        bench.write_text(json.dumps({"tasks_per_wall_second": 90.0}))
        ok = self._run_gate(tmp_path, "BENCH_kernel.json")
        assert ok.returncode == 0, ok.stderr
        assert "bench-gate: ok" in ok.stdout

        bench.write_text(json.dumps({"tasks_per_wall_second": 30.0}))
        bad = self._run_gate(tmp_path, "BENCH_kernel.json")
        assert bad.returncode == 1
        assert "REGRESSION" in bad.stderr

    def test_missing_baseline_is_skipped(self, tmp_path):
        self._repo(tmp_path, 100.0)
        new = tmp_path / "BENCH_scale.json"
        new.write_text(json.dumps({"tasks_per_wall_second": 10.0}))
        res = self._run_gate(tmp_path, "BENCH_scale.json")
        assert res.returncode == 0, res.stderr
        assert "no baseline" in res.stdout
