"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.session import Session
from repro.platform.latency import DETERMINISTIC_LATENCIES, FRONTIER_LATENCIES
from repro.platform.profiles import generic
from repro.sim import Environment, RngStreams


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def rng() -> RngStreams:
    """Deterministic RNG streams for tests."""
    return RngStreams(seed=1234)


@pytest.fixture
def small_cluster():
    """An 8-node, 8-core, 2-gpu test machine."""
    return generic(8, cores_per_node=8, gpus_per_node=2)


@pytest.fixture
def session(small_cluster) -> Session:
    """A session on the small test machine with full-noise latencies."""
    return Session(cluster=small_cluster, latencies=FRONTIER_LATENCIES,
                   seed=42)


@pytest.fixture
def det_session(small_cluster) -> Session:
    """A session with zero-noise latencies for exact-timing assertions."""
    return Session(cluster=small_cluster, latencies=DETERMINISTIC_LATENCIES,
                   seed=42)
