"""Unit tests for the performance metrics."""

import numpy as np
import pytest

from repro.analytics import makespan, task_throughput, throughput, utilization
from repro.core import TaskDescription
from repro.core.states import TaskState
from repro.core.task import Task
from repro.platform import ResourceSpec
from repro.sim import Environment


def executed_task(env, start, stop, cores=1, gpus=0):
    """A task with a synthetic exec interval."""
    task = Task(env, f"t{start}-{stop}-{cores}",
                TaskDescription(resources=ResourceSpec(cores=cores,
                                                       gpus=gpus)))
    task.advance(TaskState.TMGR_SCHEDULING)
    task.advance(TaskState.AGENT_SCHEDULING)
    env._now = start
    task.advance(TaskState.AGENT_EXECUTING)
    env._now = stop
    task.mark_exec_stop()
    task.advance(TaskState.DONE)
    return task


class TestThroughput:
    def test_uniform_rate(self):
        starts = np.arange(0.0, 100.0, 0.1)  # 10 tasks/s
        stats = throughput(starts)
        assert stats.avg == pytest.approx(10.0, rel=0.01)
        assert stats.peak == pytest.approx(10.0, rel=0.1)

    def test_bursty_peak_exceeds_avg(self):
        burst = np.concatenate([np.linspace(0, 1, 100),
                                np.linspace(99, 100, 100)])
        stats = throughput(np.sort(burst))
        assert stats.peak > 5 * stats.avg

    def test_degenerate_inputs(self):
        assert throughput(np.array([])).avg == 0.0
        assert throughput(np.array([1.0])).avg == 0.0

    def test_simultaneous_starts(self):
        stats = throughput(np.zeros(50))
        assert stats.peak == 50.0
        assert stats.avg == float("inf")

    def test_task_throughput_wrapper(self, env):
        tasks = [executed_task(env, i * 0.5, i * 0.5 + 10)
                 for i in range(20)]
        stats = task_throughput(tasks)
        assert stats.n_tasks == 20
        # n / window convention: 20 starts over a 9.5 s window.
        assert stats.avg == pytest.approx(20 / 9.5, rel=0.01)


class TestUtilization:
    def test_full_utilization(self, env):
        tasks = [executed_task(env, 0.0, 100.0, cores=4) for _ in range(2)]
        assert utilization(tasks, total_cores=8) == pytest.approx(1.0)

    def test_half_utilization(self, env):
        tasks = [executed_task(env, 0.0, 100.0, cores=4)]
        assert utilization(tasks, total_cores=8) == pytest.approx(0.5)

    def test_srun_ceiling_scenario(self, env):
        """The Fig. 4 shape: 112 concurrent single-core tasks on 224
        cores -> exactly 50 %."""
        tasks = [executed_task(env, 0.0, 180.0) for _ in range(112)]
        assert utilization(tasks, total_cores=224) == pytest.approx(0.5)

    def test_explicit_span_clips(self, env):
        tasks = [executed_task(env, 0.0, 10.0, cores=1)]
        # Over a 20 s window the task used half the time.
        assert utilization(tasks, total_cores=1,
                           span=(0.0, 20.0)) == pytest.approx(0.5)

    def test_gpu_resource(self, env):
        tasks = [executed_task(env, 0.0, 10.0, cores=1, gpus=2)]
        assert utilization(tasks, total_cores=4,
                           resource="gpus") == pytest.approx(0.5)

    def test_no_executed_tasks(self, env):
        assert utilization([], total_cores=8) == 0.0

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            utilization([], total_cores=0)

    def test_bounded_in_unit_interval(self, env):
        tasks = [executed_task(env, float(i), float(i + 5), cores=3)
                 for i in range(10)]
        u = utilization(tasks, total_cores=16)
        assert 0.0 <= u <= 1.0


class TestMakespan:
    def test_simple_span(self, env):
        tasks = [executed_task(env, 10.0, 30.0),
                 executed_task(env, 20.0, 50.0)]
        # Submission happens at env creation time (t=0 for the first
        # task's history) -> makespan = last stop - first submit.
        assert makespan(tasks) == pytest.approx(50.0)

    def test_empty(self):
        assert makespan([]) == 0.0

    def test_makespan_at_least_longest_task(self, env):
        tasks = [executed_task(env, 0.0, 180.0)]
        assert makespan(tasks) >= 180.0
