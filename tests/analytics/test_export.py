"""Tests for profile export/import round-trips."""

import pytest

from repro.analytics import Profiler, load_events, save_profile
from repro.sim import Environment


class TestRoundTrip:
    def test_save_and_load(self, env, tmp_path):
        profiler = Profiler(env)
        env._now = 1.5
        profiler.record("t1", "task_exec_start", cores=4, backend="flux")
        env._now = 2.5
        profiler.record("t1", "task_exec_stop", cores=4)
        path = tmp_path / "profile.jsonl"
        assert save_profile(profiler, path) == 2

        events = load_events(path)
        assert len(events) == 2
        assert events[0].time == 1.5
        assert events[0].entity == "t1"
        assert events[0].meta == {"cores": 4, "backend": "flux"}
        assert events[1].name == "task_exec_stop"

    def test_empty_profile(self, env, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert save_profile(Profiler(env), path) == 0
        assert load_events(path) == []

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"time": 1.0, "entity": "a", "name": "x"}\n'
                        "this is not json\n")
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_events(path)

    def test_missing_field_raises(self, tmp_path):
        path = tmp_path / "missing.jsonl"
        path.write_text('{"time": 1.0, "entity": "a"}\n')
        with pytest.raises(ValueError):
            load_events(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        path.write_text('{"time": 1.0, "entity": "a", "name": "x"}\n\n\n')
        assert len(load_events(path)) == 1

    def test_full_session_export(self, tmp_path):
        from repro.core import (
            PartitionSpec, PilotDescription, Session, TaskDescription)
        from repro.platform import generic

        session = Session(cluster=generic(4, 8), seed=1)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("flux"),)))
        tmgr.add_pilot(pilot)
        tmgr.submit_tasks([TaskDescription(duration=1.0) for _ in range(5)])
        session.run(tmgr.wait_tasks())

        path = tmp_path / "session.jsonl"
        n = save_profile(session.profiler, path)
        events = load_events(path)
        assert n == len(events) == len(session.profiler)
        # Reconstructed stream preserves record order and timing.
        assert [e.time for e in events] == [e.time for e in session.profiler]
