"""Tests for profile export/import round-trips."""

import pytest

from repro.analytics import Profiler, load_events, save_profile
from repro.sim import Environment


class TestRoundTrip:
    def test_save_and_load(self, env, tmp_path):
        profiler = Profiler(env)
        env._now = 1.5
        profiler.record("t1", "task_exec_start", cores=4, backend="flux")
        env._now = 2.5
        profiler.record("t1", "task_exec_stop", cores=4)
        path = tmp_path / "profile.jsonl"
        assert save_profile(profiler, path) == 2

        events = load_events(path)
        assert len(events) == 2
        assert events[0].time == 1.5
        assert events[0].entity == "t1"
        assert events[0].meta == {"cores": 4, "backend": "flux"}
        assert events[1].name == "task_exec_stop"

    def test_empty_profile(self, env, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert save_profile(Profiler(env), path) == 0
        assert load_events(path) == []

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"time": 1.0, "entity": "a", "name": "x"}\n'
                        "this is not json\n")
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_events(path)

    def test_missing_field_raises(self, tmp_path):
        path = tmp_path / "missing.jsonl"
        path.write_text('{"time": 1.0, "entity": "a"}\n')
        with pytest.raises(ValueError):
            load_events(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        path.write_text('{"time": 1.0, "entity": "a", "name": "x"}\n\n\n')
        assert len(load_events(path)) == 1

    def test_full_session_export(self, tmp_path):
        from repro.core import (
            PartitionSpec, PilotDescription, Session, TaskDescription)
        from repro.platform import generic

        session = Session(cluster=generic(4, 8), seed=1)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("flux"),)))
        tmgr.add_pilot(pilot)
        tmgr.submit_tasks([TaskDescription(duration=1.0) for _ in range(5)])
        session.run(tmgr.wait_tasks())

        path = tmp_path / "session.jsonl"
        n = save_profile(session.profiler, path)
        events = load_events(path)
        assert n == len(events) == len(session.profiler)
        # Reconstructed stream preserves record order and timing.
        assert [e.time for e in events] == [e.time for e in session.profiler]


class TestSchemaHeader:
    def test_header_written_first(self, env, tmp_path):
        profiler = Profiler(env)
        profiler.record("t1", "task_created")
        path = tmp_path / "p.jsonl"
        save_profile(profiler, path)
        import json

        first = json.loads(path.read_text().splitlines()[0])
        assert first == {"format": "repro-profile", "version": 2}

    def test_header_not_counted_or_loaded(self, env, tmp_path):
        profiler = Profiler(env)
        profiler.record("t1", "task_created")
        path = tmp_path / "p.jsonl"
        assert save_profile(profiler, path) == 1
        assert len(load_events(path)) == 1

    def test_legacy_headerless_files_load(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        path.write_text('{"time": 1.0, "entity": "a", "name": "x"}\n')
        events = load_events(path)
        assert len(events) == 1
        assert events[0].entity == "a"

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"format": "repro-profile", "version": 99}\n')
        with pytest.raises(ValueError, match="unsupported profile version"):
            load_events(path)


class TestHardening:
    def test_nonfinite_floats_round_trip(self, env, tmp_path):
        profiler = Profiler(env)
        profiler.record("p1", "pilot_active",
                        walltime=float("inf"),
                        offset=float("-inf"),
                        missing=float("nan"))
        path = tmp_path / "nf.jsonl"
        save_profile(profiler, path)
        # The file itself is strict JSON (no bare NaN/Infinity tokens).
        import json

        for line in path.read_text().splitlines():
            json.loads(line)
        (ev,) = load_events(path)
        assert ev.meta["walltime"] == float("inf")
        assert ev.meta["offset"] == float("-inf")
        assert ev.meta["missing"] != ev.meta["missing"]  # NaN

    def test_numpy_meta_values_round_trip(self, env, tmp_path):
        import numpy as np

        profiler = Profiler(env)
        profiler.record("t1", "task_done",
                        cores=np.int64(4), rate=np.float64(2.5))
        path = tmp_path / "np.jsonl"
        save_profile(profiler, path)
        (ev,) = load_events(path)
        assert ev.meta["cores"] == 4
        assert ev.meta["rate"] == 2.5

    def test_tuple_meta_becomes_list(self, env, tmp_path):
        profiler = Profiler(env)
        profiler.record("t1", "task_done", shape=(2, 3))
        path = tmp_path / "t.jsonl"
        save_profile(profiler, path)
        (ev,) = load_events(path)
        assert ev.meta["shape"] == [2, 3]

    def test_exotic_meta_degrades_to_repr(self, env, tmp_path):
        class Odd:
            def __repr__(self):
                return "<odd>"

        profiler = Profiler(env)
        profiler.record("t1", "task_done", thing=Odd())
        path = tmp_path / "o.jsonl"
        save_profile(profiler, path)
        (ev,) = load_events(path)
        assert ev.meta["thing"] == "<odd>"
