"""Unit tests for the trace profiler."""

import pytest

from repro.analytics import Profiler
from repro.sim import Environment


@pytest.fixture
def profiler(env):
    return Profiler(env)


class TestRecording:
    def test_record_stamps_current_time(self, env, profiler):
        env._now = 12.5
        ev = profiler.record("t1", "task_done")
        assert ev.time == 12.5

    def test_meta_captured(self, env, profiler):
        ev = profiler.record("t1", "task_exec_start", cores=4, backend="flux")
        assert ev.meta == {"cores": 4, "backend": "flux"}

    def test_len_and_iter(self, env, profiler):
        profiler.record("a", "x")
        profiler.record("b", "y")
        assert len(profiler) == 2
        assert [e.entity for e in profiler] == ["a", "b"]


class TestQueries:
    def test_events_named(self, env, profiler):
        profiler.record("a", "start")
        profiler.record("b", "start")
        profiler.record("a", "stop")
        assert len(profiler.events_named("start")) == 2
        assert profiler.events_named("missing") == []

    def test_events_for_entity(self, env, profiler):
        profiler.record("a", "start")
        profiler.record("b", "start")
        profiler.record("a", "stop")
        assert [e.name for e in profiler.events_for("a")] == ["start", "stop"]

    def test_times_sorted(self, env, profiler):
        for t in (5.0, 1.0, 3.0):
            env._now = t
            profiler.record("x", "tick")
        assert list(profiler.times("tick")) == [1.0, 3.0, 5.0]

    def test_first_last(self, env, profiler):
        env._now = 1.0
        profiler.record("a", "tick")
        env._now = 9.0
        profiler.record("b", "tick")
        assert profiler.first("tick").entity == "a"
        assert profiler.last("tick").entity == "b"
        assert profiler.first("nope") is None

    def test_duration(self, env, profiler):
        env._now = 2.0
        profiler.record("t", "begin")
        env._now = 7.5
        profiler.record("t", "end")
        assert profiler.duration("t", "begin", "end") == 5.5

    def test_duration_missing_raises(self, env, profiler):
        profiler.record("t", "begin")
        with pytest.raises(KeyError):
            profiler.duration("t", "begin", "end")

    def test_timeline(self, env, profiler):
        env._now = 1.0
        profiler.record("t", "a")
        env._now = 2.0
        profiler.record("t", "b")
        assert profiler.timeline("t") == [(1.0, "a"), (2.0, "b")]
