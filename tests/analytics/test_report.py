"""Unit tests for the text report helpers."""

from repro.analytics.report import format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "value"],
                           [("a", 1.0), ("longer", 123456.0)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "123,456" in lines[3]
        # All rows same width.
        assert len({len(l) for l in lines}) == 1

    def test_float_formats(self):
        out = format_table(["v"], [(0.12345,), (12.345,), (1234.5,), (0.0,)])
        assert "0.123" in out
        assert "12.3" in out
        assert "1,234" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert out.splitlines()[0].strip().startswith("a")


class TestFormatSeries:
    def test_sparkline_shape(self):
        times = list(range(100))
        values = [i % 10 for i in range(100)]
        out = format_series(times, values, width=20, label="test")
        assert "test" in out
        assert "peak=9" in out
        assert "|" in out

    def test_empty_series(self):
        assert "(empty)" in format_series([], [], label="x")
