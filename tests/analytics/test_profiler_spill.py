"""Streaming (spill-to-disk) profiler: bounded memory, identical data.

A profiler given a ``spill_dir`` flushes its in-memory tail to
chunked JSONL files every ``spill_threshold`` records.  Everything
observable must match the in-memory profiler: query results, event
counts, iteration order, and — most strictly — the bytes
:func:`save_profile` writes.
"""

import pytest

from repro.analytics.export import load_events, save_profile
from repro.analytics.profiler import Profiler
from repro.sim import Environment


def _fill(profiler, n=100):
    """Record a deterministic mix of events at distinct times."""
    for i in range(n):
        profiler.record(f"task.{i % 7}", f"ev_{i % 3}", at=float(i),
                        index=i, tag=f"t{i % 5}")


@pytest.fixture
def twins(tmp_path):
    """An in-memory profiler and a spilling one fed identical events."""
    env = Environment()
    mem = Profiler(env)
    spill = Profiler(env, spill_dir=tmp_path / "chunks", spill_threshold=16)
    _fill(mem)
    _fill(spill)
    return mem, spill


class TestSpillMechanics:
    def test_chunks_written_and_tail_bounded(self, twins):
        _, spill = twins
        assert spill.spilling
        assert len(spill.spilled_chunks) == 100 // 16
        assert len(spill._events) < 16
        assert all(p.is_file() for p in spill.spilled_chunks)

    def test_flush_forces_tail_out(self, twins):
        _, spill = twins
        spill.flush()
        assert not spill._events
        assert len(spill) == 100

    def test_flush_on_empty_tail_is_noop(self, tmp_path):
        p = Profiler(Environment(), spill_dir=tmp_path, spill_threshold=8)
        p.flush()
        assert p.spilled_chunks == []

    def test_non_spilling_profiler_reports_so(self):
        assert not Profiler(Environment()).spilling


class TestQueryEquivalence:
    def test_len_and_iteration_order(self, twins):
        mem, spill = twins
        assert len(spill) == len(mem) == 100
        assert list(spill) == list(mem)

    def test_events_named(self, twins):
        mem, spill = twins
        for name in ("ev_0", "ev_1", "ev_2", "missing"):
            assert spill.events_named(name) == mem.events_named(name)

    def test_events_for_entity(self, twins):
        mem, spill = twins
        for entity in ("task.0", "task.6", "missing"):
            assert spill.events_for(entity) == mem.events_for(entity)

    def test_times_first_last(self, twins):
        mem, spill = twins
        assert list(spill.times("ev_1")) == list(mem.times("ev_1"))
        assert spill.first("ev_2") == mem.first("ev_2")
        assert spill.last("ev_2") == mem.last("ev_2")
        assert spill.first("missing") is None

    def test_duration_and_timeline(self, twins):
        mem, spill = twins
        assert spill.timeline("task.3") == mem.timeline("task.3")
        assert (spill.duration("task.3", "ev_0", "ev_1")
                == mem.duration("task.3", "ev_0", "ev_1"))

    def test_needle_inside_meta_value_does_not_leak(self, tmp_path):
        """The raw-line prefilter may over-match (the needle appearing
        inside a meta value); the decoded-field check must drop it."""
        p = Profiler(Environment(), spill_dir=tmp_path, spill_threshold=1)
        p.record("e1", "real_name", at=0.0)
        p.record("e2", "other", at=1.0, note='"name": "real_name"')
        assert [ev.entity for ev in p.events_named("real_name")] == ["e1"]


class TestExportEquivalence:
    def test_save_profile_bytes_match(self, twins, tmp_path):
        mem, spill = twins
        pm, ps = tmp_path / "mem.jsonl", tmp_path / "spill.jsonl"
        assert save_profile(mem, pm) == save_profile(spill, ps) == 100
        assert pm.read_bytes() == ps.read_bytes()

    def test_save_profile_roundtrips(self, twins, tmp_path):
        _, spill = twins
        path = tmp_path / "p.jsonl"
        save_profile(spill, path)
        assert load_events(path) == list(spill)

    def test_export_after_flush_is_identical(self, twins, tmp_path):
        mem, spill = twins
        spill.flush()
        pm, ps = tmp_path / "mem.jsonl", tmp_path / "spill.jsonl"
        save_profile(mem, pm)
        save_profile(spill, ps)
        assert pm.read_bytes() == ps.read_bytes()

    def test_nonfinite_meta_survives_spill(self, tmp_path):
        env = Environment()
        mem, spill = Profiler(env), Profiler(env, spill_dir=tmp_path,
                                             spill_threshold=1)
        for p in (mem, spill):
            p.record("e", "n", at=0.0, walltime=float("inf"))
        assert spill.events_named("n") == mem.events_named("n")
        assert spill.events_named("n")[0].meta["walltime"] == float("inf")
