"""Unit tests for concurrency/rate time series."""

import numpy as np
import pytest

from repro.analytics import (
    concurrency_series,
    resource_usage_series,
    start_rate_series,
)
from tests.analytics.test_metrics import executed_task


class TestConcurrency:
    def test_plateau(self, env):
        tasks = [executed_task(env, 0.0, 100.0) for _ in range(5)]
        series = concurrency_series(tasks, resolution=10.0)
        assert series.max() == 5
        # Mid-run samples all see 5 concurrent tasks.
        mid = series.values[(series.times > 10) & (series.times < 90)]
        assert np.all(mid == 5)

    def test_staircase(self, env):
        tasks = [executed_task(env, float(10 * i), 100.0) for i in range(4)]
        series = concurrency_series(tasks, resolution=5.0)
        assert series.values[0] <= series.max()
        assert series.max() == 4

    def test_empty(self):
        series = concurrency_series([], resolution=1.0)
        assert series.times.size == 0
        assert series.max() == 0.0


class TestStartRate:
    def test_uniform_rate(self, env):
        tasks = [executed_task(env, i * 0.1, 1000.0) for i in range(500)]
        series = start_rate_series(tasks, bin_width=10.0)
        assert series.mean() == pytest.approx(10.0, rel=0.15)

    def test_empty(self):
        series = start_rate_series([], bin_width=1.0)
        assert series.times.size == 0


class TestStateOccupancy:
    def test_scheduling_backlog_visible(self, env):
        """Tasks queued (AGENT_SCHEDULING) before a staggered launch
        show up as occupancy that drains over time."""
        from repro.core import TaskDescription
        from repro.core.states import TaskState
        from repro.core.task import Task
        from repro.analytics import state_occupancy_series

        tasks = []
        for i in range(10):
            t = Task(env, f"t{i}", TaskDescription())
            env._now = 0.0
            t.advance(TaskState.TMGR_SCHEDULING)
            t.advance(TaskState.AGENT_SCHEDULING)
            env._now = 10.0 * (i + 1)
            t.advance(TaskState.AGENT_EXECUTING)
            env._now = 10.0 * (i + 1) + 5.0
            t.mark_exec_stop()
            t.advance(TaskState.DONE)
            tasks.append(t)
        series = state_occupancy_series(tasks, TaskState.AGENT_SCHEDULING,
                                        resolution=10.0)
        assert series.values[0] == 10  # all queued at t=0
        # Monotone drain as launches proceed.
        assert series.values[-1] <= 1
        assert all(b <= a for a, b in zip(series.values, series.values[1:]))

    def test_empty(self):
        from repro.analytics import state_occupancy_series

        series = state_occupancy_series([], "AGENT_SCHEDULING")
        assert series.times.size == 0


class TestResourceUsage:
    def test_fraction_busy(self, env):
        tasks = [executed_task(env, 0.0, 100.0, cores=8)]
        series = resource_usage_series(tasks, total=16, resolution=10.0)
        mid = series.values[(series.times > 5) & (series.times < 95)]
        assert np.all(np.isclose(mid, 0.5))

    def test_weighted_by_cores(self, env):
        tasks = [executed_task(env, 0.0, 50.0, cores=4),
                 executed_task(env, 0.0, 50.0, cores=12)]
        series = resource_usage_series(tasks, total=16, resolution=5.0)
        mid = series.values[(series.times > 2) & (series.times < 48)]
        assert np.all(np.isclose(mid, 1.0))

    def test_gpus(self, env):
        tasks = [executed_task(env, 0.0, 10.0, cores=1, gpus=4)]
        series = resource_usage_series(tasks, total=8, resolution=1.0,
                                       resource="gpus")
        assert series.max() == pytest.approx(0.5)
