"""Tests for the trace-validation linter."""

import pytest

from repro.analytics import (
    Profiler,
    assert_valid_trace,
    events as tev,
    validate_trace,
)
from repro.sim import Environment


@pytest.fixture
def profiler(env):
    return Profiler(env)


def record_task(env, profiler, uid, start, stop, cores=1, final="task_done"):
    env._now = start - 1.0 if start >= 1.0 else 0.0
    profiler.record(uid, tev.TASK_CREATED, cores=cores)
    env._now = start
    profiler.record(uid, tev.TASK_EXEC_START, cores=cores)
    env._now = stop
    profiler.record(uid, tev.TASK_EXEC_STOP, cores=cores)
    profiler.record(uid, final, cores=cores)


class TestCleanTraces:
    def test_empty_trace_valid(self, env, profiler):
        assert validate_trace(profiler) == []

    def test_well_formed_tasks_valid(self, env, profiler):
        record_task(env, profiler, "t1", 1.0, 5.0)
        record_task(env, profiler, "t2", 2.0, 6.0)
        assert validate_trace(profiler, total_cores=4) == []

    def test_real_session_trace_valid(self):
        from repro.core import (
            PartitionSpec, PilotDescription, Session, TaskDescription)
        from repro.platform import generic

        session = Session(cluster=generic(4, 8, 2), seed=97)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("flux"),
                                 PartitionSpec("dragon"))))
        tmgr.add_pilot(pilot)
        tmgr.submit_tasks(
            [TaskDescription(duration=5.0) for _ in range(30)] +
            [TaskDescription(mode="function", duration=5.0)
             for _ in range(30)] +
            [TaskDescription(duration=1.0, fail=True) for _ in range(5)])
        session.run(tmgr.wait_tasks())
        assert_valid_trace(session.profiler, total_cores=32)


class TestViolations:
    def test_missing_final_event(self, env, profiler):
        profiler.record("t1", tev.TASK_CREATED, cores=1)
        violations = validate_trace(profiler)
        assert any(v.rule == "conservation" for v in violations)

    def test_double_final_event(self, env, profiler):
        record_task(env, profiler, "t1", 1.0, 5.0)
        profiler.record("t1", tev.TASK_FAILED)
        violations = validate_trace(profiler)
        assert any(v.rule == "conservation" and "2 final" in v.detail
                   for v in violations)

    def test_backwards_timestamps(self, env, profiler):
        env._now = 10.0
        profiler.record("t1", tev.TASK_CREATED)
        env._now = 5.0
        profiler.record("t1", tev.TASK_DONE)
        violations = validate_trace(profiler)
        assert any(v.rule == "monotone-time" for v in violations)

    def test_exec_stop_before_start(self, env, profiler):
        profiler.record("t1", tev.TASK_CREATED)
        env._now = 10.0
        profiler.record("t1", tev.TASK_EXEC_START)
        # Manually fabricate a bad record: stop earlier than start.
        from repro.analytics.events import TraceEvent

        bad = TraceEvent(time=3.0, entity="t1", name=tev.TASK_EXEC_STOP,
                         meta={})
        profiler._events.append(bad)  # indexes catch up lazily
        profiler.record("t1", tev.TASK_DONE)
        violations = validate_trace(profiler)
        assert any(v.rule == "exec-interval" for v in violations)

    def test_oversubscription_detected(self, env, profiler):
        record_task(env, profiler, "t1", 1.0, 10.0, cores=6)
        record_task(env, profiler, "t2", 2.0, 9.0, cores=6)
        violations = validate_trace(profiler, total_cores=8)
        assert any(v.rule == "core-usage" for v in violations)

    def test_ready_without_start(self, env, profiler):
        profiler.record("flux.0", tev.BACKEND_READY, kind="flux")
        violations = validate_trace(profiler)
        assert any(v.rule == "backend-lifecycle" for v in violations)

    def test_assert_valid_raises_with_details(self, env, profiler):
        profiler.record("t1", tev.TASK_CREATED)
        with pytest.raises(AssertionError, match="conservation"):
            assert_valid_trace(profiler)
