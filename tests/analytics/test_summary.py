"""Tests for session summaries."""

import pytest

from repro.analytics import PhaseStats, summarize
from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
)
from repro.platform import generic


@pytest.fixture
def hybrid_run():
    session = Session(cluster=generic(8, 8, 2), seed=61)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=8, partitions=(PartitionSpec("flux"),
                             PartitionSpec("dragon"))))
    tmgr.add_pilot(pilot)
    tasks = tmgr.submit_tasks(
        [TaskDescription(duration=5.0) for _ in range(20)] +
        [TaskDescription(mode="function", duration=5.0) for _ in range(20)] +
        [TaskDescription(duration=1.0, fail=True) for _ in range(5)])
    session.run(tmgr.wait_tasks())
    return session, tasks


class TestPhaseStats:
    def test_from_samples(self):
        stats = PhaseStats.from_samples("x", [1.0, 2.0, 3.0, 4.0])
        assert stats.n == 4
        assert stats.mean == 2.5
        assert stats.max == 4.0
        assert stats.p50 == 2.5

    def test_empty_samples(self):
        stats = PhaseStats.from_samples("x", [])
        assert stats.n == 0
        assert stats.mean == 0.0


class TestSummarize:
    def test_counts(self, hybrid_run):
        _, tasks = hybrid_run
        summary = summarize(tasks)
        assert summary.n_tasks == 45
        assert summary.n_done == 40
        assert summary.n_failed == 5
        assert summary.n_canceled == 0

    def test_backend_breakdown(self, hybrid_run):
        _, tasks = hybrid_run
        summary = summarize(tasks)
        by_name = {b.backend: b for b in summary.backends}
        assert by_name["flux"].n_tasks == 25   # 20 exec + 5 fail-injected
        assert by_name["dragon"].n_tasks == 20
        assert by_name["flux"].n_failed == 5

    def test_phases_present(self, hybrid_run):
        _, tasks = hybrid_run
        summary = summarize(tasks)
        names = [p.name for p in summary.phases]
        assert "execution" in names
        exec_phase = next(p for p in summary.phases
                          if p.name == "execution")
        assert exec_phase.n == 45
        assert exec_phase.p50 == pytest.approx(5.0, abs=0.1)

    def test_utilization_optional(self, hybrid_run):
        _, tasks = hybrid_run
        assert summarize(tasks).utilization_cores is None
        summary = summarize(tasks, total_cores=64)
        assert 0.0 < summary.utilization_cores <= 1.0

    def test_to_text(self, hybrid_run):
        _, tasks = hybrid_run
        text = summarize(tasks, total_cores=64).to_text()
        assert "backend" in text
        assert "flux" in text and "dragon" in text
        assert "core utilization" in text

    def test_empty_task_list(self):
        summary = summarize([])
        assert summary.n_tasks == 0
        assert summary.backends == ()
        assert "tasks" in summary.to_text()
