"""Tests for the canonical workload patterns."""

import numpy as np
import pytest

from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
)
from repro.exceptions import WorkloadError
from repro.platform import generic
from repro.workloads import (
    WorkflowRunner,
    bag_of_tasks,
    ensemble,
    pipeline_with_feedback,
    strong_scaling_sweep,
)


class TestBagOfTasks:
    def test_fixed_durations(self):
        bag = bag_of_tasks(10, duration=60.0)
        assert len(bag) == 10
        assert all(t.duration == 60.0 for t in bag)

    def test_skewed_durations(self):
        bag = bag_of_tasks(5000, duration=60.0, duration_cv=0.5, seed=1)
        durations = np.array([t.duration for t in bag])
        assert durations.mean() == pytest.approx(60.0, rel=0.05)
        assert durations.std() / durations.mean() == pytest.approx(0.5,
                                                                   rel=0.1)

    def test_deterministic_by_seed(self):
        a = bag_of_tasks(10, duration_cv=0.5, seed=3)
        b = bag_of_tasks(10, duration_cv=0.5, seed=3)
        assert [t.duration for t in a] == [t.duration for t in b]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            bag_of_tasks(-1)
        with pytest.raises(WorkloadError):
            bag_of_tasks(1, duration_cv=-1)


class TestEnsemble:
    def test_shapes(self):
        members = ensemble(4, nodes_per_member=2, cores_per_node=8,
                           duration=100.0, gpus_per_node=2)
        assert len(members) == 4
        assert all(m.resources.cores == 16 for m in members)
        assert all(m.resources.gpus == 4 for m in members)
        assert all(m.resources.exclusive_nodes for m in members)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ensemble(0, 1, 8, 1.0)


class TestFeedbackPipeline:
    def test_dag_structure(self):
        wf = pipeline_with_feedback(generations=3, fan_out=4)
        wf.validate()
        assert len(wf) == 3 * 5
        # Generation 1 samplers depend on generation 0's learner.
        node = next(n for n in wf.nodes if n.name == "g1.sample0")
        assert node.depends_on == ("g0.learn",)

    def test_critical_path(self):
        wf = pipeline_with_feedback(generations=2, fan_out=8,
                                    sim_duration=100.0,
                                    learn_duration=200.0)
        assert wf.critical_path_length() == pytest.approx(600.0)

    def test_executes_end_to_end(self):
        session = Session(cluster=generic(4, 56, 8), seed=66)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("flux", nodes=2),
                                 PartitionSpec("dragon", nodes=2))))
        tmgr.add_pilot(pilot)
        wf = pipeline_with_feedback(generations=2, fan_out=4,
                                    sim_duration=10.0, learn_duration=20.0)
        runner = WorkflowRunner(session, tmgr, wf)
        session.run(runner.start())
        assert runner.result.succeeded
        # Samplers (functions) ran on dragon; learners on flux.
        assert runner.result.tasks["g0.sample0"].backend == "dragon"
        assert runner.result.tasks["g0.learn"].backend == "flux"


class TestStrongScaling:
    def test_work_conserved(self):
        sweep = strong_scaling_sweep(base_cores=8, steps=4,
                                     total_work=8000.0)
        for task in sweep:
            assert (task.resources.cores * task.duration
                    == pytest.approx(8000.0))

    def test_doubling(self):
        sweep = strong_scaling_sweep(base_cores=2, steps=3,
                                     total_work=100.0)
        assert [t.resources.cores for t in sweep] == [2, 4, 8]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            strong_scaling_sweep(0, 1, 1.0)
