"""Unit tests for the IMPECCABLE campaign generator and runner."""

import pytest

from repro.core import PartitionSpec, PilotDescription, Session
from repro.exceptions import WorkloadError
from repro.platform import frontier
from repro.workloads import (
    IMPECCABLE_STAGES,
    CampaignRunner,
    campaign_plan,
    make_stage_tasks,
    min_scalable_tasks,
    stage_task_count,
)
from repro.workloads.impeccable import REFERENCE_NODES, TASK_DURATION


class TestStageTable:
    def test_six_workflows_present(self):
        names = {s.name for s in IMPECCABLE_STAGES}
        assert names == {"docking", "sst_train", "sst_inference",
                         "scoring_mmpbsa", "ampl", "esmacs", "reinvent"}

    def test_resource_shapes_match_paper(self):
        by_name = {s.name: s for s in IMPECCABLE_STAGES}
        # Scoring is the 7,168-core MPI stage ("1-7,168 cores").
        assert by_name["scoring_mmpbsa"].cores == 7168
        assert by_name["scoring_mmpbsa"].exclusive
        # GPU stages exist (training, inference, generation).
        assert by_name["sst_train"].gpus > 0
        assert by_name["reinvent"].gpus > 0
        # Docking is CPU-only.
        assert by_name["docking"].gpus == 0

    def test_dependency_graph_is_acyclic_within_generation(self):
        names = [s.name for s in IMPECCABLE_STAGES]
        seen = set()
        for stage in IMPECCABLE_STAGES:
            for dep in stage.depends_on:
                assert dep in seen, f"{stage.name} depends on later {dep}"
            seen.add(stage.name)

    def test_feedback_loop_exists(self):
        docking = next(s for s in IMPECCABLE_STAGES if s.name == "docking")
        assert "reinvent" in docking.depends_on_prev


class TestCounts:
    def test_reference_scale(self):
        for stage in IMPECCABLE_STAGES:
            assert stage_task_count(stage, REFERENCE_NODES) == stage.count

    def test_scalable_stages_grow(self):
        docking = next(s for s in IMPECCABLE_STAGES if s.name == "docking")
        assert stage_task_count(docking, 1024) == 4 * docking.count

    def test_sublinear_scaling(self):
        mmpbsa = next(s for s in IMPECCABLE_STAGES
                      if s.name == "scoring_mmpbsa")
        assert stage_task_count(mmpbsa, 1024) == 2 * mmpbsa.count

    def test_static_stages_do_not_grow(self):
        train = next(s for s in IMPECCABLE_STAGES if s.name == "sst_train")
        assert stage_task_count(train, 1024) == train.count

    def test_adaptive_boost(self):
        docking = next(s for s in IMPECCABLE_STAGES if s.name == "docking")
        base = stage_task_count(docking, 256)
        boosted = stage_task_count(docking, 256, free_fraction=1.0)
        assert base < boosted <= round(base * 1.25)

    def test_campaign_totals_near_paper(self):
        # Static (non-adaptive) totals; the adaptive runner adds up to
        # ~25 % more, landing at the paper's ~550 / ~1800.
        for nodes, lo, hi in ((256, 430, 650), (1024, 1300, 2100)):
            plan = campaign_plan(nodes, generations=12)
            total = sum(len(tasks) for gen in plan for tasks in gen.values())
            assert lo <= total <= hi, (nodes, total)

    def test_min_scalable_bound(self):
        assert min_scalable_tasks(256) == 204
        assert min_scalable_tasks(1024) == 816

    def test_invalid_generation_count(self):
        with pytest.raises(WorkloadError):
            campaign_plan(256, generations=0)


class TestTaskMaterialization:
    def test_tasks_carry_tags_and_duration(self):
        stage = IMPECCABLE_STAGES[0]
        tasks = make_stage_tasks(stage, 3, generation=5)
        assert len(tasks) == 3
        assert all(t.duration == TASK_DURATION for t in tasks)
        assert all(t.tags["generation"] == 5 for t in tasks)
        assert all(t.tags["workflow"] == stage.name for t in tasks)

    def test_negative_count_raises(self):
        with pytest.raises(WorkloadError):
            make_stage_tasks(IMPECCABLE_STAGES[0], -1, 0)


class TestRunner:
    @pytest.fixture
    def campaign_session(self):
        session = Session(cluster=frontier(64), seed=5)
        pmgr = session.pilot_manager()
        tmgr = session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=64, partitions=(PartitionSpec("flux", policy="easy"),)))
        tmgr.add_pilot(pilot)
        return session, tmgr, pilot

    def test_small_campaign_completes(self, campaign_session):
        session, tmgr, pilot = campaign_session
        runner = CampaignRunner(session, tmgr, pilot, n_nodes=64,
                                generations=2)
        session.run(runner.start())
        assert runner.result.n_tasks > 0
        assert all(t.succeeded for t in runner.result.tasks)

    def test_stage_ordering_respected(self, campaign_session):
        session, tmgr, pilot = campaign_session
        runner = CampaignRunner(session, tmgr, pilot, n_nodes=64,
                                generations=2)
        session.run(runner.start())
        spans = runner.result.stage_spans
        for g in range(2):
            # Within a generation: train begins after docking completes.
            assert spans[(g, "sst_train")][0] >= spans[(g, "docking")][1]
            assert spans[(g, "reinvent")][0] >= spans[(g, "esmacs")][1]

    def test_feedback_lag_allows_overlap(self, campaign_session):
        session, tmgr, pilot = campaign_session
        runner = CampaignRunner(session, tmgr, pilot, n_nodes=64,
                                generations=3)
        session.run(runner.start())
        spans = runner.result.stage_spans
        # Generation 1 docking starts before generation 0 fully ends
        # (the lag-2 feedback pipeline).
        assert spans[(1, "docking")][0] < spans[(0, "reinvent")][1]

    def test_adaptive_changes_counts(self, campaign_session):
        session, tmgr, pilot = campaign_session
        runner = CampaignRunner(session, tmgr, pilot, n_nodes=64,
                                generations=1, adaptive=True)
        session.run(runner.start())
        adaptive_n = runner.result.n_tasks

        session2 = Session(cluster=frontier(64), seed=5)
        pmgr2, tmgr2 = session2.pilot_manager(), session2.task_manager()
        pilot2 = pmgr2.submit_pilots(PilotDescription(
            nodes=64, partitions=(PartitionSpec("flux", policy="easy"),)))
        tmgr2.add_pilot(pilot2)
        runner2 = CampaignRunner(session2, tmgr2, pilot2, n_nodes=64,
                                 generations=1, adaptive=False)
        session2.run(runner2.start())
        assert adaptive_n >= runner2.result.n_tasks
