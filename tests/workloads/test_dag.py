"""Tests for the generic workflow DAG API."""

import pytest

from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
    TaskState,
)
from repro.exceptions import WorkloadError
from repro.platform import generic
from repro.workloads import (
    FAIL_FAST,
    SKIP_DEPENDENTS,
    Workflow,
    WorkflowRunner,
)


def diamond(fail_node=None):
    """a -> (b, c) -> d."""
    wf = Workflow("diamond")
    for name, deps in (("a", ()), ("b", ("a",)), ("c", ("a",)),
                       ("d", ("b", "c"))):
        wf.add(name, TaskDescription(duration=5.0,
                                     fail=(name == fail_node)),
               depends_on=deps)
    return wf


@pytest.fixture
def runtime():
    session = Session(cluster=generic(4, 8, 2), seed=81)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=4, partitions=(PartitionSpec("flux"),)))
    tmgr.add_pilot(pilot)
    return session, tmgr


class TestValidation:
    def test_duplicate_node(self):
        wf = Workflow()
        wf.add("a", TaskDescription())
        with pytest.raises(WorkloadError):
            wf.add("a", TaskDescription())

    def test_unknown_dependency(self):
        wf = Workflow()
        wf.add("a", TaskDescription(), depends_on=("ghost",))
        with pytest.raises(WorkloadError, match="unknown node"):
            wf.validate()

    def test_cycle_detection(self):
        wf = Workflow()
        wf.add("a", TaskDescription(), depends_on=("b",))
        wf.add("b", TaskDescription(), depends_on=("a",))
        with pytest.raises(WorkloadError, match="cycle"):
            wf.validate()

    def test_self_cycle(self):
        wf = Workflow()
        wf.add("a", TaskDescription(), depends_on=("a",))
        with pytest.raises(WorkloadError, match="cycle"):
            wf.validate()

    def test_topological_order(self):
        wf = diamond()
        order = wf.topological_order()
        assert order.index("a") < order.index("b")
        assert order.index("a") < order.index("c")
        assert order.index("b") < order.index("d")
        assert order.index("c") < order.index("d")

    def test_critical_path(self):
        wf = diamond()
        assert wf.critical_path_length() == pytest.approx(15.0)

    def test_unknown_failure_policy(self, runtime):
        session, tmgr = runtime
        with pytest.raises(WorkloadError):
            WorkflowRunner(session, tmgr, diamond(),
                           failure_policy="retry-forever")


class TestExecution:
    def test_diamond_completes_in_order(self, runtime):
        session, tmgr = runtime
        runner = WorkflowRunner(session, tmgr, diamond())
        session.run(runner.start())
        tasks = runner.result.tasks
        assert runner.result.succeeded
        assert len(tasks) == 4
        # b and c start only after a stops; d after both.
        assert tasks["b"].exec_start >= tasks["a"].exec_stop
        assert tasks["c"].exec_start >= tasks["a"].exec_stop
        assert tasks["d"].exec_start >= max(tasks["b"].exec_stop,
                                            tasks["c"].exec_stop)

    def test_independent_branches_run_concurrently(self, runtime):
        session, tmgr = runtime
        runner = WorkflowRunner(session, tmgr, diamond())
        session.run(runner.start())
        tasks = runner.result.tasks
        overlap = (min(tasks["b"].exec_stop, tasks["c"].exec_stop)
                   - max(tasks["b"].exec_start, tasks["c"].exec_start))
        assert overlap > 0

    def test_skip_dependents_on_failure(self, runtime):
        session, tmgr = runtime
        runner = WorkflowRunner(session, tmgr, diamond(fail_node="b"),
                                failure_policy=SKIP_DEPENDENTS)
        session.run(runner.start())
        assert not runner.result.succeeded
        assert runner.result.tasks["b"].state == TaskState.FAILED
        # c is independent of b: it still ran.
        assert runner.result.tasks["c"].succeeded
        # d depends on the failed b: skipped, never submitted.
        assert "d" in runner.result.skipped
        assert "d" not in runner.result.tasks

    def test_fail_fast_aborts_remaining(self, runtime):
        session, tmgr = runtime
        wf = Workflow("chain")
        wf.add("a", TaskDescription(duration=5.0, fail=True))
        wf.add("b", TaskDescription(duration=5.0), depends_on=("a",))
        wf.add("c", TaskDescription(duration=5.0), depends_on=("b",))
        runner = WorkflowRunner(session, tmgr, wf,
                                failure_policy=FAIL_FAST)
        session.run(runner.start())
        assert runner.result.skipped == ["b", "c"] or \
            set(runner.result.skipped) == {"b", "c"}

    def test_wide_fan_out(self, runtime):
        session, tmgr = runtime
        wf = Workflow("fanout")
        wf.add("root", TaskDescription(duration=1.0))
        for i in range(30):
            wf.add(f"leaf{i}", TaskDescription(duration=2.0),
                   depends_on=("root",))
        wf.add("join", TaskDescription(duration=1.0),
               depends_on=tuple(f"leaf{i}" for i in range(30)))
        runner = WorkflowRunner(session, tmgr, wf)
        session.run(runner.start())
        assert runner.result.succeeded
        assert len(runner.result.tasks) == 32
