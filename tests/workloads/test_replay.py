"""Tests for trace-based workload replay."""

import pytest

from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
)
from repro.exceptions import WorkloadError
from repro.platform import ResourceSpec, generic
from repro.workloads import ReplayRunner, workload_from_trace


def record_run(backend="flux", seed=11):
    """A source run whose trace we replay."""
    session = Session(cluster=generic(4, 8, 2), seed=seed)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=4, partitions=(PartitionSpec(backend),)))
    tmgr.add_pilot(pilot)

    def staggered(env):
        for i in range(10):
            tmgr.submit_tasks(TaskDescription(
                duration=10.0 + i,
                resources=ResourceSpec(cores=1 + (i % 3))))
            yield env.timeout(5.0)

    session.run(session.env.process(staggered(session.env)))
    session.run(tmgr.wait_tasks())
    return session


class TestReconstruction:
    def test_workload_shape_recovered(self):
        session = record_run()
        workload = workload_from_trace(session.profiler)
        assert len(workload) == 10
        # Arrivals normalized to t=0 and preserving the 5 s stagger.
        arrivals = [t.arrival for t in workload]
        assert arrivals[0] == 0.0
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(g == pytest.approx(5.0) for g in gaps)
        # Durations and shapes recovered.
        assert workload[0].description.duration == pytest.approx(10.0,
                                                                 abs=0.01)
        assert workload[4].description.resources.cores == 2

    def test_empty_trace_raises(self):
        from repro.analytics import Profiler
        from repro.sim import Environment

        with pytest.raises(WorkloadError):
            workload_from_trace(Profiler(Environment()))

    def test_roundtrip_through_jsonl(self, tmp_path):
        from repro.analytics import load_events, save_profile

        session = record_run()
        path = tmp_path / "trace.jsonl"
        save_profile(session.profiler, path)
        workload = workload_from_trace(load_events(path))
        assert len(workload) == 10


class TestReplay:
    def test_replay_on_other_backend(self):
        source = record_run(backend="flux")
        workload = workload_from_trace(source.profiler)

        target = Session(cluster=generic(4, 8, 2), seed=99)
        pmgr, tmgr = target.pilot_manager(), target.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("prrte"),)))
        tmgr.add_pilot(pilot)
        runner = ReplayRunner(target, tmgr, workload)
        target.run(runner.start())
        assert len(runner.tasks) == 10
        assert all(t.succeeded for t in runner.tasks)
        assert all(t.backend == "prrte" for t in runner.tasks)

    def test_arrival_pattern_respected(self):
        source = record_run()
        workload = workload_from_trace(source.profiler)
        target = Session(cluster=generic(4, 8, 2), seed=100)
        pmgr, tmgr = target.pilot_manager(), target.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("flux"),)))
        tmgr.add_pilot(pilot)
        runner = ReplayRunner(target, tmgr, workload)
        target.run(runner.start())
        submits = [t.state_history[0][0] for t in runner.tasks]
        gaps = [b - a for a, b in zip(submits, submits[1:])]
        # The first submission may wait for pilot bootstrap; later gaps
        # follow the recorded 5 s pattern.
        assert all(g == pytest.approx(5.0, abs=0.1) for g in gaps[1:])

    def test_time_scale_compresses(self):
        source = record_run()
        workload = workload_from_trace(source.profiler)
        target = Session(cluster=generic(4, 8, 2), seed=101)
        pmgr, tmgr = target.pilot_manager(), target.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("flux"),)))
        tmgr.add_pilot(pilot)
        runner = ReplayRunner(target, tmgr, workload, time_scale=0.1)
        target.run(runner.start())
        submits = [t.state_history[0][0] for t in runner.tasks]
        gaps = [b - a for a, b in zip(submits, submits[1:])]
        assert all(g == pytest.approx(0.5, abs=0.05) for g in gaps[1:])

    def test_invalid_time_scale(self):
        target = Session(cluster=generic(2, 8, 2), seed=1)
        tmgr = target.task_manager()
        with pytest.raises(WorkloadError):
            ReplayRunner(target, tmgr, [], time_scale=0.0)
