"""Unit tests for the synthetic workload generators."""

import pytest

from repro.workloads import (
    dummy_workload,
    mixed_workload,
    null_workload,
    task_count,
)


class TestTaskCount:
    def test_table1_formula(self):
        # Table 1: n_nodes * cpn * 4; the srun experiment is 896 tasks
        # on 4 nodes at 56 cores.
        assert task_count(4, 56) == 896
        assert task_count(1024, 56) == 229376

    def test_waves_override(self):
        assert task_count(4, 56, waves=1) == 224

    def test_validation(self):
        with pytest.raises(ValueError):
            task_count(0, 56)
        with pytest.raises(ValueError):
            task_count(4, 56, waves=0)


class TestNullAndDummy:
    def test_null_tasks_have_zero_duration(self):
        tasks = null_workload(10)
        assert len(tasks) == 10
        assert all(t.duration == 0.0 for t in tasks)
        assert all(t.executable == "null" for t in tasks)

    def test_dummy_tasks_sleep(self):
        tasks = dummy_workload(5, duration=180.0)
        assert all(t.duration == 180.0 for t in tasks)
        assert all(t.executable == "sleep-180" for t in tasks)

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            dummy_workload(-1)

    def test_resources(self):
        tasks = dummy_workload(2, cores=4, gpus=1)
        assert all(t.resources.cores == 4 for t in tasks)
        assert all(t.resources.gpus == 1 for t in tasks)

    def test_backend_hint_propagates(self):
        tasks = null_workload(2, backend="dragon")
        assert all(t.backend == "dragon" for t in tasks)


class TestMixed:
    def test_half_and_half(self):
        tasks = mixed_workload(10, 10, duration=360.0)
        execs = [t for t in tasks if t.mode == "executable"]
        funcs = [t for t in tasks if t.mode == "function"]
        assert len(execs) == 10 and len(funcs) == 10

    def test_interleaved(self):
        tasks = mixed_workload(5, 5)
        modes = [t.mode for t in tasks[:10]]
        assert modes == ["executable", "function"] * 5

    def test_uneven_counts(self):
        tasks = mixed_workload(7, 3)
        assert len(tasks) == 10
        assert sum(t.mode == "executable" for t in tasks) == 7

    def test_no_interleave(self):
        tasks = mixed_workload(3, 3, interleave=False)
        assert [t.mode for t in tasks] == ["executable"] * 3 + ["function"] * 3
