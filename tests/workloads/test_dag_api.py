"""API-surface tests for Workflow/WorkflowResult helpers."""

import pytest

from repro.core import TaskDescription
from repro.exceptions import SimulationError
from repro.workloads import Workflow, WorkflowResult


class TestWorkflowApi:
    def test_len_and_contains(self):
        wf = Workflow()
        wf.add("a", TaskDescription())
        wf.add("b", TaskDescription(), depends_on=("a",))
        assert len(wf) == 2
        assert "a" in wf
        assert "c" not in wf

    def test_nodes_snapshot(self):
        wf = Workflow()
        wf.add("a", TaskDescription())
        nodes = wf.nodes
        nodes.clear()
        assert len(wf) == 1  # snapshot, not the internal list

    def test_empty_workflow_metrics(self):
        wf = Workflow()
        assert wf.topological_order() == []
        assert wf.critical_path_length() == 0.0

    def test_duplicate_deps_counted_once(self):
        wf = Workflow()
        wf.add("a", TaskDescription(duration=1.0))
        wf.add("b", TaskDescription(duration=1.0),
               depends_on=("a", "a", "a"))
        assert wf.topological_order() == ["a", "b"]
        assert wf.critical_path_length() == pytest.approx(2.0)


class TestWorkflowResult:
    def test_succeeded_requires_no_skips(self):
        result = WorkflowResult()
        assert result.succeeded  # vacuous truth: nothing ran, nothing skipped
        result.skipped.append("x")
        assert not result.succeeded


class TestMonitorGuards:
    def test_probe_after_start_rejected(self, env):
        from repro.sim import Monitor

        mon = Monitor(env, interval=1.0)
        mon.probe("x", lambda: 0)
        mon.start()
        with pytest.raises(SimulationError):
            mon.probe("y", lambda: 1)

    def test_double_start_rejected(self, env):
        from repro.sim import Monitor

        mon = Monitor(env, interval=1.0)
        mon.probe("x", lambda: 0)
        mon.start()
        with pytest.raises(SimulationError):
            mon.start()

    def test_peak_of_empty_probe(self, env):
        from repro.sim import Monitor

        mon = Monitor(env, interval=1.0)
        mon.probe("x", lambda: 0)
        with pytest.raises(SimulationError):
            mon.peak("x")
