"""Unit tests for Resource and Store primitives."""

import pytest

from repro.exceptions import SimulationError
from repro.sim import Environment, Resource, Store


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_grants_up_to_capacity(self, env):
        res = Resource(env, capacity=2)
        r1, r2, r3 = res.request(), res.request(), res.request()
        assert r1.triggered and r2.triggered
        assert not r3.triggered
        assert res.count == 2
        assert res.queued == 1

    def test_release_grants_next_fifo(self, env):
        res = Resource(env, capacity=1)
        r1 = res.request()
        r2 = res.request()
        r3 = res.request()
        r1.release()
        assert r2.triggered and not r3.triggered
        r2.release()
        assert r3.triggered

    def test_release_is_idempotent(self, env):
        res = Resource(env, capacity=1)
        r1 = res.request()
        r1.release()
        r1.release()
        assert res.count == 0

    def test_cancel_waiting_request(self, env):
        res = Resource(env, capacity=1)
        res.request()
        r2 = res.request()
        r2.release()  # cancel while queued
        assert res.queued == 0

    def test_context_manager_releases(self, env):
        res = Resource(env, capacity=1)
        acquired = []

        def worker(env, res, name):
            with res.request() as req:
                yield req
                acquired.append((env.now, name))
                yield env.timeout(10)

        env.process(worker(env, res, "a"))
        env.process(worker(env, res, "b"))
        env.run()
        assert acquired == [(0.0, "a"), (10.0, "b")]

    def test_fifo_fairness_under_contention(self, env):
        res = Resource(env, capacity=1)
        order = []

        def worker(env, res, i):
            yield env.timeout(i * 0.001)  # deterministic arrival order
            with res.request() as req:
                yield req
                order.append(i)
                yield env.timeout(1)

        for i in range(5):
            env.process(worker(env, res, i))
        env.run()
        assert order == [0, 1, 2, 3, 4]


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        store.put("x")
        got = store.get()
        assert got.triggered and got.value == "x"

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        results = []

        def consumer(env, store):
            item = yield store.get()
            results.append((env.now, item))

        def producer(env, store):
            yield env.timeout(5)
            store.put("late")

        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert results == [(5.0, "late")]

    def test_fifo_order(self, env):
        store = Store(env)
        for i in range(5):
            store.put(i)
        got = [store.get().value for _ in range(5)]
        assert got == list(range(5))

    def test_capacity_overflow_raises(self, env):
        store = Store(env, capacity=2)
        store.put(1)
        store.put(2)
        with pytest.raises(SimulationError):
            store.put(3)

    def test_capacity_validation(self, env):
        with pytest.raises(SimulationError):
            Store(env, capacity=0)

    def test_try_get(self, env):
        store = Store(env)
        assert store.try_get() is None
        store.put("a")
        assert store.try_get() == "a"
        assert store.try_get() is None

    def test_len_and_items(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.items == [1, 2]

    def test_waiting_getters_served_fifo(self, env):
        store = Store(env)
        results = []

        def consumer(env, store, name):
            item = yield store.get()
            results.append((name, item))

        env.process(consumer(env, store, "first"))
        env.process(consumer(env, store, "second"))

        def producer(env, store):
            yield env.timeout(1)
            store.put("a")
            store.put("b")

        env.process(producer(env, store))
        env.run()
        assert results == [("first", "a"), ("second", "b")]
