"""Edge-case tests for the DES kernel and primitives."""

import pytest

from repro.exceptions import SimulationError
from repro.sim import AllOf, AnyOf, Environment, Interrupt, Resource


class TestRunHorizons:
    def test_run_until_exact_event_time(self, env):
        hits = []
        env.schedule(5.0, hits.append, 1)
        env.run(until=5.0)
        assert hits == [1]

    def test_clock_lands_on_horizon_with_no_events(self, env):
        env.run(until=42.0)
        assert env.now == 42.0

    def test_resume_after_horizon(self, env):
        hits = []
        env.schedule(10.0, hits.append, 1)
        env.run(until=5.0)
        assert hits == []
        env.run()
        assert hits == [1]
        assert env.now == 10.0

    def test_peek(self, env):
        assert env.peek() == float("inf")
        env.schedule(3.0, lambda: None)
        assert env.peek() == 3.0

    def test_run_until_now_leaves_clock_untouched(self, env):
        # A no-op horizon at the current instant must not perturb the
        # clock — not even through a float round-trip.  Use a time
        # that is not exactly representable to make any rewrite of
        # `_now` (e.g. `_now = float(until)`) observable.
        env.schedule(0.1, lambda: None)
        env.run()
        before = env.now
        assert before == 0.1
        env.run(until=env.now)
        assert env.now is before or env.now == before
        import struct

        assert (struct.pack("<d", env.now)
                == struct.pack("<d", before))

    def test_run_until_now_still_fires_due_events(self, env):
        hits = []
        env.schedule(2.0, lambda: None)
        env.run()
        env.schedule(0.0, hits.append, "due-now")
        env.run(until=env.now)
        assert hits == ["due-now"]
        assert env.now == 2.0


class TestZeroDelays:
    def test_zero_delay_timeout_fires_now(self, env):
        stamps = []
        env.schedule(0.0, lambda: stamps.append(env.now))
        env.run()
        assert stamps == [0.0]

    def test_chained_zero_delays_preserve_order(self, env):
        order = []

        def chain(env, i):
            yield env.timeout(0.0)
            order.append(i)

        for i in range(5):
            env.process(chain(env, i))
        env.run()
        assert order == list(range(5))

    def test_infinite_timeout_never_fires(self, env):
        fired = []
        ev = env.timeout(float("inf"))
        ev.callbacks.append(lambda e: fired.append(True))
        env.schedule(1.0, lambda: None)
        env.run(until=1e12)
        assert not fired


class TestConditionEdges:
    def test_nested_conditions(self, env):
        inner = env.all_of([env.timeout(1), env.timeout(2)])
        outer = env.any_of([inner, env.timeout(10)])
        done = []
        outer.callbacks.append(lambda e: done.append(env.now))
        env.run()
        assert done == [2.0]

    def test_all_of_single_event(self, env):
        cond = env.all_of([env.timeout(3)])
        env.run()
        assert cond.processed

    def test_condition_of_processes_and_timeouts_mixed(self, env):
        def quick(env):
            yield env.timeout(1)
            return "p"

        cond = env.any_of([env.process(quick(env)), env.timeout(5)])
        env.run(cond)
        assert env.now == 1.0


class TestInterruptEdges:
    def test_interrupt_before_first_yield_is_processed(self, env):
        log = []

        def proc(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                log.append("interrupted")

        p = env.process(proc(env))
        # Interrupt scheduled at t=0 — after the bootstrap resume.
        env.schedule(0.0, p.interrupt)
        env.run()
        assert log == ["interrupted"]

    def test_double_interrupt_second_wins_too(self, env):
        log = []

        def proc(env):
            for _ in range(2):
                try:
                    yield env.timeout(100)
                except Interrupt:
                    log.append(env.now)

        p = env.process(proc(env))
        env.schedule(1.0, p.interrupt)
        env.schedule(2.0, p.interrupt)
        env.run()
        assert log == [1.0, 2.0]


class TestResourceEdges:
    def test_release_from_waiting_does_not_grant_twice(self, env):
        res = Resource(env, capacity=1)
        held = res.request()
        w1 = res.request()
        w2 = res.request()
        w1.release()          # cancel while queued
        held.release()
        assert w2.triggered
        assert not w1.triggered

    def test_count_tracks_grants(self, env):
        res = Resource(env, capacity=3)
        reqs = [res.request() for _ in range(5)]
        assert res.count == 3
        assert res.queued == 2
        for r in reqs:
            r.release()
        assert res.count == 0
        assert res.queued == 0
