"""Unit tests for generator-based processes."""

import pytest

from repro.exceptions import SimulationError
from repro.sim import Environment, Interrupt


class TestBasics:
    def test_process_runs_generator(self, env):
        log = []

        def proc(env):
            log.append(env.now)
            yield env.timeout(3)
            log.append(env.now)

        env.process(proc(env))
        env.run()
        assert log == [0.0, 3.0]

    def test_return_value_becomes_event_value(self, env):
        def proc(env):
            yield env.timeout(1)
            return 99

        p = env.process(proc(env))
        env.run()
        assert p.value == 99

    def test_non_generator_raises(self, env):
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_is_alive(self, env):
        def proc(env):
            yield env.timeout(5)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_processes_wait_on_each_other(self, env):
        def child(env):
            yield env.timeout(2)
            return "child result"

        def parent(env):
            result = yield env.process(child(env))
            return f"got {result}"

        p = env.process(parent(env))
        env.run()
        assert p.value == "got child result"

    def test_yield_already_processed_event_resumes_immediately(self, env):
        ev = env.event()
        ev.succeed("early")
        env.run()

        def proc(env):
            val = yield ev
            return val

        p = env.process(proc(env))
        env.run()
        assert p.value == "early"


class TestFailures:
    def test_exception_propagates_to_waiter(self, env):
        def child(env):
            yield env.timeout(1)
            raise ValueError("child broke")

        def parent(env):
            try:
                yield env.process(child(env))
            except ValueError as exc:
                return f"caught {exc}"

        p = env.process(parent(env))
        env.run()
        assert p.value == "caught child broke"

    def test_yield_non_event_throws_into_generator(self, env):
        def proc(env):
            try:
                yield "not an event"
            except SimulationError:
                return "recovered"
            yield env.timeout(0)

        p = env.process(proc(env))
        env.run()
        assert p.value == "recovered"

    def test_active_process_visible_during_resume(self, env):
        seen = []

        def proc(env):
            seen.append(env.active_process)
            yield env.timeout(1)

        p = env.process(proc(env))
        env.run()
        assert seen == [p]
        assert env.active_process is None


class TestInterrupts:
    def test_interrupt_raises_inside_generator(self, env):
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100)
                log.append("finished")
            except Interrupt as exc:
                log.append(("interrupted", env.now, exc.cause))

        p = env.process(sleeper(env))
        env.schedule(10, p.interrupt, "watchdog")
        env.run()
        assert log == [("interrupted", 10.0, "watchdog")]

    def test_interrupt_dead_process_raises(self, env):
        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_interrupted_process_can_continue(self, env):
        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(5)
            return env.now

        p = env.process(sleeper(env))
        env.schedule(10, p.interrupt)
        env.run()
        assert p.value == 15.0

    def test_interrupt_detaches_from_target(self, env):
        # After an interrupt, the original timeout firing must not
        # resume the process a second time.
        resumes = []

        def sleeper(env):
            try:
                yield env.timeout(50)
                resumes.append("timeout")
            except Interrupt:
                resumes.append("interrupt")
                yield env.timeout(100)
                resumes.append("second sleep")

        p = env.process(sleeper(env))
        env.schedule(10, p.interrupt)
        env.run()
        assert resumes == ["interrupt", "second sleep"]
