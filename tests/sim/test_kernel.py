"""Unit tests for the simulation kernel (clock, queue, run modes)."""

import pytest

from repro.exceptions import SimulationError
from repro.sim import Environment


class TestClock:
    def test_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_initial_time(self):
        assert Environment(initial_time=100.0).now == 100.0

    def test_time_advances_with_events(self, env):
        env.timeout(7.5)
        env.run()
        assert env.now == 7.5

    def test_time_frozen_between_events(self, env):
        stamps = []
        env.schedule(1.0, lambda: stamps.append(env.now))
        env.schedule(1.0, lambda: stamps.append(env.now))
        env.run()
        assert stamps == [1.0, 1.0]


class TestRun:
    def test_run_until_time(self, env):
        hits = []
        for d in (1, 2, 3, 4, 5):
            env.schedule(d, hits.append, d)
        env.run(until=3)
        assert hits == [1, 2, 3]
        assert env.now == 3.0

    def test_run_until_past_raises(self, env):
        env.run(until=10)
        with pytest.raises(SimulationError):
            env.run(until=5)

    def test_run_until_event_returns_value(self, env):
        def proc(env):
            yield env.timeout(2)
            return "result"

        assert env.run(env.process(proc(env))) == "result"

    def test_run_until_event_raises_on_failure(self, env):
        def proc(env):
            yield env.timeout(1)
            raise ValueError("bad")

        with pytest.raises(ValueError, match="bad"):
            env.run(env.process(proc(env)))

    def test_run_until_untriggerable_event_deadlocks(self, env):
        with pytest.raises(SimulationError, match="deadlock"):
            env.run(env.event())

    def test_run_drains_queue(self, env):
        hits = []
        env.schedule(5, hits.append, 1)
        env.run()
        assert hits == [1]
        assert env.peek() == float("inf")


class TestOrdering:
    def test_fifo_at_equal_times(self, env):
        order = []
        for i in range(10):
            env.schedule(1.0, order.append, i)
        env.run()
        assert order == list(range(10))

    def test_chronological_order(self, env):
        order = []
        for d in (5, 1, 3, 2, 4):
            env.schedule(d, order.append, d)
        env.run()
        assert order == [1, 2, 3, 4, 5]

    def test_step_with_empty_queue_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_unhandled_process_failure_surfaces(self, env):
        def bad(env):
            yield env.timeout(1)
            raise RuntimeError("nobody is watching")

        env.process(bad(env))
        with pytest.raises(RuntimeError, match="nobody is watching"):
            env.run()

    def test_negative_schedule_raises(self, env):
        with pytest.raises(SimulationError):
            env.schedule(-1, lambda: None)


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def scenario():
            env = Environment()
            trace = []

            def worker(env, name):
                for i in range(3):
                    yield env.timeout(0.5 * (i + 1))
                    trace.append((env.now, name, i))

            for n in range(4):
                env.process(worker(env, f"w{n}"))
            env.run()
            return trace

        assert scenario() == scenario()
