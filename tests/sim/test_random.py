"""Unit tests for the named RNG streams."""

import numpy as np
import pytest

from repro.sim import RngStreams


class TestStreams:
    def test_same_seed_same_draws(self):
        a, b = RngStreams(7), RngStreams(7)
        assert a.stream("x").random() == b.stream("x").random()

    def test_different_seeds_differ(self):
        a, b = RngStreams(1), RngStreams(2)
        assert a.stream("x").random() != b.stream("x").random()

    def test_streams_are_independent(self):
        # Drawing from one stream must not perturb another.
        a = RngStreams(7)
        b = RngStreams(7)
        a.stream("noise").random(1000)
        assert a.stream("x").random() == b.stream("x").random()

    def test_stream_identity_cached(self):
        rng = RngStreams(0)
        assert rng.stream("x") is rng.stream("x")

    def test_name_mapping_stable(self):
        # crc32-based, not hash()-based: stable across interpreters.
        a = RngStreams(3).stream("flux.startup").random()
        b = RngStreams(3).stream("flux.startup").random()
        assert a == b


class TestDistributions:
    def test_lognormal_mean(self):
        rng = RngStreams(11)
        draws = [rng.lognormal_latency("t", mean=2.0, cv=0.3)
                 for _ in range(20000)]
        assert np.mean(draws) == pytest.approx(2.0, rel=0.02)

    def test_lognormal_cv(self):
        rng = RngStreams(12)
        draws = np.array([rng.lognormal_latency("t", mean=1.0, cv=0.5)
                          for _ in range(20000)])
        assert draws.std() / draws.mean() == pytest.approx(0.5, rel=0.05)

    def test_lognormal_zero_mean_returns_zero(self):
        assert RngStreams(0).lognormal_latency("t", mean=0.0) == 0.0

    def test_lognormal_positive(self):
        rng = RngStreams(13)
        assert all(rng.lognormal_latency("t", 0.01, cv=1.5) > 0
                   for _ in range(100))

    def test_uniform_bounds(self):
        rng = RngStreams(14)
        draws = [rng.uniform("u", 2.0, 5.0) for _ in range(1000)]
        assert all(2.0 <= d < 5.0 for d in draws)

    def test_exponential_mean(self):
        rng = RngStreams(15)
        draws = [rng.exponential("e", 3.0) for _ in range(20000)]
        assert np.mean(draws) == pytest.approx(3.0, rel=0.03)

    def test_exponential_zero_mean(self):
        assert RngStreams(0).exponential("e", 0.0) == 0.0


class TestLognormalBatch:
    """`lognormal_latency_batch` must be bitwise identical to the
    equivalent sequence of scalar draws — the bulk submission path
    relies on it to keep traces byte-identical to the legacy path."""

    def test_batch_matches_sequential_bitwise(self):
        a, b = RngStreams(7), RngStreams(7)
        seq = [a.lognormal_latency("agent.dispatch", 0.004, cv=0.3)
               for _ in range(1000)]
        batch = b.lognormal_latency_batch("agent.dispatch", 0.004,
                                          cv=0.3, n=1000)
        assert batch == seq  # float equality: must be the same bits

    def test_batch_spanning_refills_matches(self):
        # 512 is the prefetch size; cross it mid-batch several times.
        a, b = RngStreams(3), RngStreams(3)
        seq = []
        for n in (100, 500, 700):
            seq.append([a.lognormal_latency("x", 1.0, cv=0.5)
                        for _ in range(n)])
        got = [b.lognormal_latency_batch("x", 1.0, cv=0.5, n=n)
               for n in (100, 500, 700)]
        assert got == seq

    def test_batch_interleaves_with_scalar_draws(self):
        a, b = RngStreams(11), RngStreams(11)
        seq = [a.lognormal_latency("y", 0.01) for _ in range(30)]
        got = b.lognormal_latency_batch("y", 0.01, n=10)
        got += [b.lognormal_latency("y", 0.01) for _ in range(10)]
        got += b.lognormal_latency_batch("y", 0.01, n=10)
        assert got == seq

    def test_zero_mean_draws_nothing(self):
        a, b = RngStreams(5), RngStreams(5)
        assert a.lognormal_latency_batch("z", 0.0, n=4) == [0.0] * 4
        # the buffer was untouched: next draws still line up
        assert (a.lognormal_latency("z", 1.0)
                == b.lognormal_latency("z", 1.0))

    def test_empty_batch(self):
        assert RngStreams(0).lognormal_latency_batch("w", 1.0, n=0) == []
