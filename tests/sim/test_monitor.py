"""Tests for the sampling monitor."""

import pytest

from repro.exceptions import SimulationError
from repro.sim import Environment, Monitor


class TestSetup:
    def test_interval_validation(self, env):
        with pytest.raises(SimulationError):
            Monitor(env, interval=0)

    def test_duplicate_probe(self, env):
        mon = Monitor(env)
        mon.probe("x", lambda: 1)
        with pytest.raises(SimulationError):
            mon.probe("x", lambda: 2)

    def test_start_without_probes(self, env):
        with pytest.raises(SimulationError):
            Monitor(env).start()

    def test_unknown_probe_query(self, env):
        mon = Monitor(env)
        mon.probe("x", lambda: 1)
        with pytest.raises(SimulationError):
            mon.samples("y")


class TestSampling:
    def test_samples_on_cadence(self, env):
        state = {"v": 0}

        def ticker(env):
            for i in range(10):
                yield env.timeout(1.0)
                state["v"] = i + 1

        mon = Monitor(env, interval=2.0)
        mon.probe("v", lambda: state["v"])
        env.process(ticker(env))
        mon.start(stop_when=lambda: state["v"] >= 10)
        env.run()
        times = [t for t, _ in mon.samples("v")]
        assert times[0] == 0.0
        assert all(b - a == pytest.approx(2.0)
                   for a, b in zip(times, times[1:]))

    def test_peak_and_mean(self, env):
        seq = iter([1, 5, 3, 2])
        mon = Monitor(env, interval=1.0)
        mon.probe("x", lambda: next(seq))
        count = {"n": 0}

        def bump():
            count["n"] += 1
            return count["n"] >= 4

        mon.start(stop_when=bump)
        env.run()
        assert mon.peak("x") == 5
        assert mon.mean("x") == pytest.approx(11 / 4)

    def test_stop_ends_loop(self, env):
        mon = Monitor(env, interval=1.0)
        mon.probe("x", lambda: 0)
        mon.start()
        env.schedule(5.5, mon.stop)
        env.run(until=20.0)
        assert len(mon.samples("x")) == 6  # t=0..5

    def test_monitor_against_real_workload(self):
        from repro.core import (
            PartitionSpec, PilotDescription, Session, TaskDescription)
        from repro.platform import generic

        session = Session(cluster=generic(4, 8, 2), seed=55)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("flux"),)))
        tmgr.add_pilot(pilot)
        tasks = tmgr.submit_tasks([TaskDescription(duration=20.0)
                                   for _ in range(64)])
        mon = Monitor(session.env, interval=5.0)
        mon.probe("busy_cores",
                  lambda: (pilot.allocation.busy_cores
                           if pilot.allocation else 0))
        mon.start(stop_when=lambda: all(t.is_final for t in tasks))
        session.run(tmgr.wait_tasks())
        # 64 x 20 s single-core tasks on 32 cores: the monitor saw the
        # machine fully busy at some point.
        assert mon.peak("busy_cores") == 32


class TestMonitorExport:
    def _sampled(self, env):
        mon = Monitor(env, interval=1.0)
        depth = {"v": 0}
        mon.probe("depth", lambda: depth["v"])
        mon.probe("load", lambda: depth["v"] * 0.5)
        mon.start()
        for t, v in ((0.5, 3), (1.5, 7), (2.5, 2)):
            env.schedule(t, lambda v=v: depth.__setitem__("v", v))
        env.schedule(3.5, mon.stop)
        env.run(until=10.0)
        return mon

    def test_to_series(self, env):
        mon = self._sampled(env)
        series = mon.to_series("depth")
        assert list(series.times) == [0.0, 1.0, 2.0, 3.0]
        assert list(series.values) == [0.0, 3.0, 7.0, 2.0]
        assert series.max() == 7.0

    def test_export_loads_as_profile(self, env, tmp_path):
        from repro.analytics import load_events

        mon = self._sampled(env)
        path = tmp_path / "monitor.jsonl"
        n = mon.export(path)
        events = load_events(path)
        assert n == len(events) == 8  # 2 probes x 4 sweeps
        entities = {e.entity for e in events}
        assert entities == {"monitor.depth", "monitor.load"}
        # Samples are time-ordered and merged across probes.
        times = [e.time for e in events]
        assert times == sorted(times)
        depth = [e.meta["value"] for e in events
                 if e.entity == "monitor.depth"]
        assert depth == [0, 3, 7, 2]


class TestMonitorSpill:
    def _twins(self, tmp_path, threshold=4):
        """An in-memory and a spilling monitor over the same schedule."""
        monitors = []
        for spill in (False, True):
            from repro.sim import Environment

            env = Environment()
            kwargs = ({"spill_dir": tmp_path / "chunks",
                       "spill_threshold": threshold} if spill else {})
            mon = Monitor(env, interval=1.0, **kwargs)
            depth = {"v": 0}
            mon.probe("depth", lambda d=depth: d["v"])
            mon.probe("load", lambda d=depth: d["v"] * 0.5)
            mon.start()
            for t, v in ((0.5, 3), (1.5, 7), (2.5, 2), (3.5, 9), (4.5, 1)):
                env.schedule(t, lambda d=depth, v=v: d.__setitem__("v", v))
            env.schedule(5.5, mon.stop)
            env.run(until=10.0)
            monitors.append(mon)
        return monitors

    def test_chunks_written_and_buffer_bounded(self, tmp_path):
        _, spill = self._twins(tmp_path)
        assert spill._chunks, "threshold 4 over 12 samples must spill"
        assert spill._n_buffered < 4 + 2  # at most one sweep over

    def test_samples_equivalent(self, tmp_path):
        mem, spill = self._twins(tmp_path)
        for name in ("depth", "load"):
            assert spill.samples(name) == mem.samples(name)
            assert spill.values(name) == mem.values(name)
            assert spill.peak(name) == mem.peak(name)
            assert spill.mean(name) == mem.mean(name)

    def test_to_series_equivalent(self, tmp_path):
        mem, spill = self._twins(tmp_path)
        s_mem, s_spill = mem.to_series("depth"), spill.to_series("depth")
        assert list(s_mem.times) == list(s_spill.times)
        assert list(s_mem.values) == list(s_spill.values)

    def test_export_bytes_identical(self, tmp_path):
        mem, spill = self._twins(tmp_path)
        pm, ps = tmp_path / "mem.jsonl", tmp_path / "spill.jsonl"
        assert mem.export(pm) == spill.export(ps) == 12
        assert pm.read_bytes() == ps.read_bytes()
