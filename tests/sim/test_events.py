"""Unit tests for the event primitives."""

import pytest

from repro.exceptions import SimulationError
from repro.sim import AllOf, AnyOf, Environment, Event, Timeout


class TestEvent:
    def test_starts_pending(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed

    def test_succeed_sets_value(self, env):
        ev = env.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_succeed_twice_raises(self, env):
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_then_succeed_raises(self, env):
        ev = env.event()
        ev._defused = True
        ev.fail(ValueError("boom"))
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            ev.fail("not an exception")

    def test_value_before_trigger_raises(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_callbacks_fire_on_processing(self, env):
        ev = env.event()
        seen = []
        ev.callbacks.append(lambda e: seen.append(e.value))
        ev.succeed("hello")
        assert seen == []  # not yet processed
        env.run()
        assert seen == ["hello"]
        assert ev.processed


class TestTimeout:
    def test_fires_at_delay(self, env):
        fired = []
        ev = env.timeout(5.0)
        ev.callbacks.append(lambda e: fired.append(env.now))
        env.run()
        assert fired == [5.0]

    def test_negative_delay_raises(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_carries_value(self, env):
        ev = env.timeout(1.0, value="payload")
        env.run()
        assert ev.value == "payload"

    def test_pending_timeout_is_triggered_but_not_processed(self, env):
        # Regression: a Timeout is "triggered" at creation; conditions
        # must not count it as already happened.
        ev = env.timeout(60.0)
        assert ev.triggered
        assert not ev.processed


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        t1, t2, t3 = env.timeout(1), env.timeout(5), env.timeout(3)
        done_at = []
        cond = env.all_of([t1, t2, t3])
        cond.callbacks.append(lambda e: done_at.append(env.now))
        env.run()
        assert done_at == [5.0]

    def test_any_of_fires_on_first(self, env):
        t1, t2 = env.timeout(4), env.timeout(2)
        done_at = []
        cond = env.any_of([t1, t2])
        cond.callbacks.append(lambda e: done_at.append(env.now))
        env.run()
        assert done_at == [2.0]

    def test_any_of_does_not_count_pending_timeouts(self, env):
        # Regression for the startup-watchdog bug: AnyOf(proc, timeout)
        # must not fire at t=0 just because the timeout is scheduled.
        def quick(env):
            yield env.timeout(3.0)
            return "done"

        proc = env.process(quick(env))
        watchdog = env.timeout(100.0)
        fired = []
        cond = env.any_of([proc, watchdog])
        cond.callbacks.append(lambda e: fired.append(env.now))
        env.run(until=50.0)
        assert fired == [3.0]

    def test_empty_all_of_fires_immediately(self, env):
        cond = env.all_of([])
        assert cond.triggered

    def test_empty_any_of_fires_immediately(self, env):
        cond = env.any_of([])
        assert cond.triggered

    def test_all_of_collects_values(self, env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(2, value="b")
        cond = env.all_of([t1, t2])
        env.run()
        assert set(cond.value.values()) == {"a", "b"}

    def test_all_of_with_already_processed_event(self, env):
        ev = env.event()
        ev.succeed(1)
        env.run()
        assert ev.processed
        cond = env.all_of([ev, env.timeout(2)])
        fired = []
        cond.callbacks.append(lambda e: fired.append(env.now))
        env.run()
        assert fired == [2.0]

    def test_condition_fails_if_child_fails(self, env):
        def failing(env):
            yield env.timeout(1)
            raise RuntimeError("child died")

        proc = env.process(failing(env))
        cond = env.all_of([proc, env.timeout(10)])
        cond._defused = True
        env.run()
        assert cond.triggered
        assert not cond._ok
