"""End-to-end integration tests across the full stack."""

import pytest

from repro.analytics import (
    events as tev,
    makespan,
    task_throughput,
    utilization,
)
from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
    TaskState,
)
from repro.platform import frontier, generic


class TestHybridPipeline:
    """The paper's flux+dragon configuration, end to end."""

    @pytest.fixture
    def run(self):
        session = Session(cluster=frontier(8), seed=11)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=8, partitions=(PartitionSpec("flux", n_instances=2),
                                 PartitionSpec("dragon", n_instances=2))))
        tmgr.add_pilot(pilot)
        tasks = tmgr.submit_tasks(
            [TaskDescription(mode="executable", duration=30.0)
             for _ in range(200)] +
            [TaskDescription(mode="function", duration=30.0)
             for _ in range(200)])
        session.run(tmgr.wait_tasks())
        return session, pilot, tasks

    def test_conservation(self, run):
        """Every submitted task reaches exactly one final state."""
        _, _, tasks = run
        assert all(t.is_final for t in tasks)
        assert sum(t.succeeded for t in tasks) == 400

    def test_no_resource_leak(self, run):
        _, pilot, _ = run
        for ex in pilot.agent.executors.values():
            alloc = ex.allocation
            assert alloc.free_cores == alloc.total_cores
            assert alloc.free_gpus == alloc.total_gpus

    def test_exec_intervals_have_exact_duration(self, run):
        _, _, tasks = run
        for t in tasks:
            # Dragon completions arrive over a zmq pipe (~0.2 ms), so
            # allow sub-millisecond notification skew.
            assert t.exec_stop - t.exec_start == pytest.approx(30.0,
                                                               abs=1e-3)

    def test_trace_complete(self, run):
        session, _, tasks = run
        profiler = session.profiler
        assert len(profiler.events_named(tev.TASK_EXEC_START)) == 400
        assert len(profiler.events_named(tev.TASK_EXEC_STOP)) == 400
        assert len(profiler.events_named(tev.TASK_DONE)) == 400

    def test_metrics_sane(self, run):
        session, pilot, tasks = run
        stats = task_throughput(tasks)
        assert stats.avg > 0
        assert stats.peak >= stats.avg * 0.5
        util = utilization(tasks, total_cores=8 * 56)
        assert 0.0 < util <= 1.0
        assert makespan(tasks) >= 30.0


class TestBackendEquivalence:
    """The same workload completes identically (modulo timing) on every
    backend — RP's uniform task lifecycle guarantee (§3.2)."""

    @pytest.mark.parametrize("backend", ["srun", "flux", "dragon"])
    def test_uniform_lifecycle(self, backend):
        session = Session(cluster=generic(4, 8, 2), seed=2)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec(backend),)))
        tmgr.add_pilot(pilot)
        tasks = tmgr.submit_tasks([
            TaskDescription(duration=5.0, backend=backend,
                            input_staging=1, output_staging=1)
            for _ in range(20)])
        session.run(tmgr.wait_tasks())
        for t in tasks:
            states = [s for _, s in t.state_history]
            assert states[0] == TaskState.NEW
            assert TaskState.AGENT_STAGING_INPUT in states
            assert TaskState.AGENT_EXECUTING in states
            assert TaskState.AGENT_STAGING_OUTPUT in states
            assert states[-1] == TaskState.DONE


class TestScale:
    def test_thousand_tasks_on_16_nodes(self):
        session = Session(cluster=frontier(16), seed=9)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=16, partitions=(PartitionSpec("flux", n_instances=4),)))
        tmgr.add_pilot(pilot)
        tasks = tmgr.submit_tasks([TaskDescription(duration=60.0)
                                   for _ in range(2000)])
        session.run(tmgr.wait_tasks())
        assert sum(t.succeeded for t in tasks) == 2000
        # 2000 single-core 60 s tasks on 896 cores: at least 3 waves.
        assert makespan(tasks) >= 3 * 60.0

    def test_heterogeneous_sizes(self):
        session = Session(cluster=frontier(8), seed=10)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=8, partitions=(PartitionSpec("flux", policy="easy"),)))
        tmgr.add_pilot(pilot)
        from repro.platform import ResourceSpec

        tasks = tmgr.submit_tasks(
            [TaskDescription(duration=10.0,
                             resources=ResourceSpec(cores=c))
             for c in (1, 56, 112, 448, 1, 28, 224)])
        session.run(tmgr.wait_tasks())
        assert all(t.succeeded for t in tasks)
