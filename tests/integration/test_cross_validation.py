"""Cross-validation: independent code paths must agree on the same
quantities (metrics vs. traces vs. figure exporters vs. substrate
counters)."""

import pytest

from repro.analytics import (
    concurrency_series,
    exec_intervals,
    makespan,
    summarize,
    task_throughput,
    utilization,
)
from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
)
from repro.platform import generic


@pytest.fixture(scope="module")
def run():
    session = Session(cluster=generic(8, 8, 2), seed=202)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=8, partitions=(PartitionSpec("flux", n_instances=2),
                             PartitionSpec("dragon", n_instances=2))))
    tmgr.add_pilot(pilot)
    tasks = tmgr.submit_tasks(
        [TaskDescription(duration=20.0) for _ in range(60)] +
        [TaskDescription(mode="function", duration=20.0)
         for _ in range(60)])
    session.run(tmgr.wait_tasks())
    return session, pilot, tasks


class TestTaskObjectsVsTrace:
    def test_exec_counts_agree(self, run):
        session, _, tasks = run
        from repro.analytics import events as tev

        trace_starts = session.profiler.times(tev.TASK_EXEC_START)
        object_starts = sorted(t.exec_start for t in tasks)
        assert len(trace_starts) == len(object_starts)
        assert trace_starts[0] == pytest.approx(object_starts[0])
        assert trace_starts[-1] == pytest.approx(object_starts[-1])

    def test_busy_core_seconds_agree(self, run):
        session, _, tasks = run
        iv = exec_intervals(tasks)
        busy_from_objects = float(
            ((iv[:, 1] - iv[:, 0]) * iv[:, 2]).sum())
        # 120 single-core 20 s tasks.
        assert busy_from_objects == pytest.approx(120 * 20.0, rel=0.01)


class TestMetricsInternalConsistency:
    def test_utilization_equals_busy_over_span(self, run):
        _, _, tasks = run
        iv = exec_intervals(tasks)
        t0, t1 = iv[:, 0].min(), iv[:, 1].max()
        busy = ((iv[:, 1] - iv[:, 0]) * iv[:, 2]).sum()
        direct = busy / (64 * (t1 - t0))
        assert utilization(tasks, total_cores=64) == pytest.approx(direct)

    def test_concurrency_peak_bounded_by_cores(self, run):
        _, _, tasks = run
        series = concurrency_series(tasks, resolution=1.0)
        assert series.max() <= 64

    def test_summary_matches_direct_metrics(self, run):
        _, _, tasks = run
        summary = summarize(tasks, total_cores=64)
        assert summary.n_done == sum(t.succeeded for t in tasks)
        assert summary.utilization_cores == pytest.approx(
            utilization(tasks, total_cores=64))
        per_backend_total = sum(b.n_tasks for b in summary.backends)
        assert per_backend_total == len(tasks)

    def test_makespan_bounds_throughput_window(self, run):
        _, _, tasks = run
        stats = task_throughput(tasks)
        assert stats.window <= makespan(tasks)


class TestSubstrateCountersVsTasks:
    def test_flux_instance_counters_match(self, run):
        _, pilot, tasks = run
        flux_tasks = [t for t in tasks if t.backend == "flux"]
        hierarchy = pilot.agent.executors["flux"].hierarchy
        assert sum(i.n_completed for i in hierarchy.instances) \
            == len(flux_tasks)
        assert sum(i.n_submitted for i in hierarchy.instances) \
            == len(flux_tasks)

    def test_dragon_runtime_counters_match(self, run):
        _, pilot, tasks = run
        dragon_tasks = [t for t in tasks if t.backend == "dragon"]
        runtimes = pilot.agent.executors["dragon"].runtimes
        assert sum(rt.n_completed for rt in runtimes) == len(dragon_tasks)
        assert sum(rt.pool.n_warm_dispatch + rt.pool.n_cold_dispatch
                   for rt in runtimes) == len(dragon_tasks)

    def test_agent_counters_match(self, run):
        _, pilot, tasks = run
        agent = pilot.agent
        assert agent.n_dispatched == len(tasks)
        assert agent.n_done == len(tasks)
        assert agent.n_failed == 0
