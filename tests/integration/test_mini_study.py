"""Capstone: the whole characterization study in miniature.

One test per top-level finding of the paper, each executed at reduced
scale in a single process — the global orderings that make the
paper's argument must all hold simultaneously on the same codebase.
"""

import pytest

from repro.analytics import task_throughput, utilization
from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
)
from repro.platform import frontier
from repro.workloads import dummy_workload, mixed_workload


def run_stack(partitions, descs, nodes=8, seed=123):
    session = Session(cluster=frontier(nodes), seed=seed)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(nodes=nodes,
                                                partitions=partitions))
    tmgr.add_pilot(pilot)
    tasks = tmgr.submit_tasks(descs)
    session.run(tmgr.wait_tasks())
    return session, tasks


class TestMiniStudy:
    """§6's conclusions, asserted together at 8 nodes."""

    @pytest.fixture(scope="class")
    def rates(self):
        out = {}
        n = 8 * 56 * 2
        for name, parts in (
            ("srun", (PartitionSpec("srun"),)),
            ("flux_1", (PartitionSpec("flux"),)),
            ("flux_4", (PartitionSpec("flux", n_instances=4),)),
            ("hybrid", (PartitionSpec("flux", n_instances=2),
                        PartitionSpec("dragon", n_instances=2))),
        ):
            descs = (mixed_workload(n // 2, n // 2, duration=0.0)
                     if name == "hybrid" else dummy_workload(n, duration=0.0))
            _, tasks = run_stack(parts, descs)
            out[name] = task_throughput(tasks)
        return out

    def test_flux_beats_srun(self, rates):
        assert rates["flux_1"].avg > 2 * rates["srun"].avg

    def test_partitioning_helps(self, rates):
        assert rates["flux_4"].avg > rates["flux_1"].avg

    def test_hybrid_peaks_highest(self, rates):
        assert rates["hybrid"].peak > rates["flux_4"].peak
        assert rates["hybrid"].peak > rates["srun"].peak * 5

    def test_srun_utilization_capped_but_flux_not(self):
        # 4-node dummy runs: the Fig. 4 contrast.
        _, srun_tasks = run_stack(
            (PartitionSpec("srun"),),
            dummy_workload(4 * 56 * 4, duration=180.0), nodes=4)
        _, flux_tasks = run_stack(
            (PartitionSpec("flux"),),
            dummy_workload(4 * 56 * 4, duration=180.0), nodes=4)
        srun_util = utilization(srun_tasks, total_cores=224)
        flux_util = utilization(flux_tasks, total_cores=224)
        assert srun_util == pytest.approx(0.5, abs=0.02)
        assert flux_util > 0.9

    def test_every_backend_ran_everything(self, rates):
        for name, stats in rates.items():
            assert stats.n_tasks == 8 * 56 * 2, name
