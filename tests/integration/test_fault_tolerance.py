"""Fault-injection integration tests: retries, crashes, failover."""

import pytest

from repro.core import (
    PartitionSpec,
    PilotDescription,
    Session,
    TaskDescription,
    TaskState,
)
from repro.platform import generic


@pytest.fixture
def flux_session():
    session = Session(cluster=generic(8, 8, 2), seed=21)
    pmgr, tmgr = session.pilot_manager(), session.task_manager()
    pilot = pmgr.submit_pilots(PilotDescription(
        nodes=8, partitions=(PartitionSpec("flux", n_instances=2),)))
    tmgr.add_pilot(pilot)
    session.run(pilot.active_event())
    return session, tmgr, pilot


class TestPayloadFailures:
    def test_mixed_success_and_failure(self, flux_session):
        session, tmgr, _ = flux_session
        good = tmgr.submit_tasks([TaskDescription(duration=1.0)
                                  for _ in range(10)])
        bad = tmgr.submit_tasks([TaskDescription(duration=1.0, fail=True)
                                 for _ in range(5)])
        session.run(tmgr.wait_tasks())
        assert all(t.succeeded for t in good)
        assert all(t.state == TaskState.FAILED for t in bad)

    def test_failures_free_resources_for_later_tasks(self, flux_session):
        session, tmgr, pilot = flux_session
        tmgr.submit_tasks([TaskDescription(duration=1.0, fail=True)
                           for _ in range(64)])
        survivors = tmgr.submit_tasks([TaskDescription(duration=1.0)
                                       for _ in range(64)])
        session.run(tmgr.wait_tasks())
        assert all(t.succeeded for t in survivors)
        alloc = pilot.agent.executors["flux"].allocation
        assert alloc.free_cores == alloc.total_cores


class TestFluxInstanceCrash:
    def test_crash_mid_run_fails_its_tasks_and_releases_nodes(
            self, flux_session):
        session, tmgr, pilot = flux_session
        tasks = tmgr.submit_tasks([TaskDescription(duration=500.0)
                                   for _ in range(40)])
        # Let everything start, then kill one instance.
        session.run(until=session.now + 60.0)
        executor = pilot.agent.executors["flux"]
        victim = executor.hierarchy.instances[0]
        victim.crash("injected broker failure")
        session.run(tmgr.wait_tasks())
        failed = [t for t in tasks if t.state == TaskState.FAILED]
        done = [t for t in tasks if t.succeeded]
        assert failed, "the crashed instance held tasks"
        assert done, "the surviving instance kept working"
        assert len(failed) + len(done) == 40
        assert victim.allocation.free_cores == victim.allocation.total_cores

    def test_crash_with_retries_reroutes_to_survivor(self, flux_session):
        session, tmgr, pilot = flux_session
        tasks = tmgr.submit_tasks([TaskDescription(duration=100.0, retries=1)
                                   for _ in range(20)])
        session.run(until=session.now + 40.0)
        executor = pilot.agent.executors["flux"]
        executor.hierarchy.instances[0].crash("injected")
        session.run(tmgr.wait_tasks())
        # With one retry everything should eventually succeed on the
        # surviving instance.
        assert all(t.succeeded for t in tasks)
        retried = [t for t in tasks if t.attempts > 1]
        assert retried


class TestDragonCrash:
    def test_runtime_crash_fails_queued_tasks(self):
        session = Session(cluster=generic(4, 8, 2), seed=22)
        pmgr, tmgr = session.pilot_manager(), session.task_manager()
        pilot = pmgr.submit_pilots(PilotDescription(
            nodes=4, partitions=(PartitionSpec("dragon"),)))
        tmgr.add_pilot(pilot)
        session.run(pilot.active_event())
        tasks = tmgr.submit_tasks([
            TaskDescription(mode="function", duration=500.0)
            for _ in range(10)])
        session.run(until=session.now + 20.0)
        runtime = pilot.agent.executors["dragon"].runtimes[0]
        runtime.crash("injected")
        session.run(until=session.now + 600.0)
        # Running tasks keep their slots in this failure model; queued
        # ones were failed back through the completion pipe.
        assert any(t.state == TaskState.FAILED for t in tasks) or \
            all(t.succeeded for t in tasks)
