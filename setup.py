"""Setuptools shim: enables legacy editable installs
(``pip install -e . --no-build-isolation``) on environments without
the ``wheel`` package.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
